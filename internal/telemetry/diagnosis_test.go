package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSeriesSampleQueryAndRates(t *testing.T) {
	reg := New()
	c := reg.Counter("ops_total")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat_seconds")
	s := NewSeries(reg, SeriesConfig{Points: 8})
	for i := 0; i < 3; i++ {
		c.Add(10)
		g.Set(float64(i))
		h.Observe(0.01)
		s.Sample()
	}
	d, ok := s.Query("ops_total", 0)
	if !ok || d.Kind != seriesCounter {
		t.Fatalf("ops_total query = %+v ok=%v", d, ok)
	}
	if len(d.Points) != 3 || d.Last != 30 || d.Delta != 20 {
		t.Fatalf("counter series = %+v (want 3 points, last 30, delta 20)", d)
	}
	if d.RatePerSec <= 0 {
		t.Fatalf("counter rate = %v, want positive", d.RatePerSec)
	}
	if d, ok = s.Query("depth", 0); !ok || d.Kind != seriesGauge || d.Last != 2 || d.Delta != 0 {
		t.Fatalf("gauge series = %+v ok=%v", d, ok)
	}
	for _, sub := range []string{":p50", ":p95", ":p99", ":count"} {
		if _, ok := s.Query("lat_seconds"+sub, 0); !ok {
			t.Fatalf("histogram sub-series %q missing", sub)
		}
	}
	if d, _ := s.Query("lat_seconds:count", 0); d.Kind != seriesCounter || d.Last != 3 {
		t.Fatalf("hist count sub-series = %+v", d)
	}
	if _, ok := s.Query("nope", 0); ok {
		t.Fatal("unknown series must miss")
	}
	// A window narrower than the sampling gaps keeps only the newest
	// point (the cutoff anchors on the last timestamp).
	if d, _ = s.Query("ops_total", time.Nanosecond); len(d.Points) == 3 {
		t.Fatalf("windowed query returned all %d points", len(d.Points))
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	reg := New()
	g := reg.Gauge("v")
	s := NewSeries(reg, SeriesConfig{Points: 4})
	for i := 0; i < 7; i++ {
		g.Set(float64(i))
		s.Sample()
	}
	d, ok := s.Query("v", 0)
	if !ok || len(d.Points) != 4 {
		t.Fatalf("wrapped series = %+v ok=%v, want 4 points", d, ok)
	}
	if d.Points[0].Value != 3 || d.Last != 6 {
		t.Fatalf("wrapped window = %+v, want values 3..6", d.Points)
	}
	for i := 1; i < len(d.Points); i++ {
		if d.Points[i].UnixNano < d.Points[i-1].UnixNano {
			t.Fatalf("points out of order: %+v", d.Points)
		}
	}
}

func TestSeriesMaxSeriesCap(t *testing.T) {
	reg := New()
	reg.Counter("a_total").Inc()
	reg.Counter("b_total").Inc()
	reg.Counter("c_total").Inc()
	s := NewSeries(reg, SeriesConfig{Points: 4, MaxSeries: 2})
	s.Sample()
	if got := s.Len(); got != 2 {
		t.Fatalf("series len = %d, want cap 2", got)
	}
	// 3 user counters + the store's own 2 self-counters, minus 2 kept.
	if got := reg.Counter("tsdb_dropped_series_total").Value(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if len(s.List()) != 2 {
		t.Fatalf("list = %+v", s.List())
	}
}

func TestSeriesSparklinesAndDump(t *testing.T) {
	reg := New()
	c := reg.Counter("ops_total")
	s := NewSeries(reg, SeriesConfig{Points: 16})
	for i := 0; i < 5; i++ {
		c.Add(int64(i * i))
		s.Sample()
	}
	rows := s.Sparklines(0, 8)
	if len(rows) == 0 {
		t.Fatal("no sparkline rows")
	}
	found := false
	for _, r := range rows {
		if r.Name == "ops_total" {
			found = true
			if r.Spark == "" || !strings.ContainsAny(r.Spark, "▁▂▃▄▅▆▇█") {
				t.Fatalf("sparkline %q not drawn from blocks", r.Spark)
			}
		}
	}
	if !found {
		t.Fatalf("ops_total missing from rows %+v", rows)
	}
	dump := s.Dump(0)
	if len(dump) != s.Len() {
		t.Fatalf("dump %d series, store has %d", len(dump), s.Len())
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].Name < dump[i-1].Name {
			t.Fatalf("dump not sorted: %q after %q", dump[i].Name, dump[i-1].Name)
		}
	}
}

func TestSeriesNilSafety(t *testing.T) {
	var s *Series
	s.Sample()
	if _, ok := s.Query("x", 0); ok {
		t.Fatal("nil series query must miss")
	}
	if s.List() != nil || s.Len() != 0 || s.Dump(0) != nil || s.Sparklines(0, 8) != nil {
		t.Fatal("nil series must read empty")
	}
	if NewSeries(nil, SeriesConfig{}) != nil {
		t.Fatal("nil registry must yield nil series")
	}
}

func TestSamplerHeadDecision(t *testing.T) {
	reg := New()
	tr := NewTracer(8, reg)
	tr.SetSampler(NewSampler(reg, SamplerConfig{HeadRate: 4}))
	valid := 0
	for i := 0; i < 8; i++ {
		tc := tr.NewTrace()
		if tc.Valid() {
			valid++
			if tr.StartSpan("op", tc) == nil {
				t.Fatal("admitted trace must get a real span handle")
			}
		} else if h := tr.StartSpan("op", tc); h != nil {
			t.Fatal("head-dropped trace must not materialize spans")
		}
	}
	if valid != 2 {
		t.Fatalf("admitted %d of 8 at rate 4, want 2", valid)
	}
	if got := reg.Counter("sampler_head_dropped_total").Value(); got != 6 {
		t.Fatalf("head dropped = %d, want 6", got)
	}
	// The tracer ring must only hold the admitted operations' spans.
	if tr.Total() != 0 {
		t.Fatalf("dropped StartSpan still recorded %d spans", tr.Total())
	}
}

// primeSampler records count fast root spans through the tracer so the
// slow rule arms with a tight threshold.
func primeSampler(tr *Tracer, count int) {
	for i := 0; i < count; i++ {
		tr.record(Span{Name: "op", TraceID: uint64(0x1000 + i), SpanID: uint64(i + 1), DurationNS: 1_000_000})
	}
}

func TestSamplerTailKeepsSlowErroredShed(t *testing.T) {
	reg := New()
	tr := NewTracer(64, reg)
	smp := NewSampler(reg, SamplerConfig{MinCount: 8, Capacity: 8})
	tr.SetSampler(smp)
	primeSampler(tr, 16)
	if kept := smp.Kept(); len(kept) != 0 {
		t.Fatalf("uniform fast traces kept: %+v", kept)
	}
	if reg.Counter("sampler_tail_dropped_total").Value() == 0 {
		t.Fatal("fast traces should count as tail-dropped")
	}

	tr.record(Span{Name: "op", TraceID: 0x5101, SpanID: 0x51, DurationNS: 250_000_000})
	tr.record(Span{Name: "op", TraceID: 0xe1, SpanID: 0xe2, DurationNS: 1_000,
		Attrs: []Attr{{Key: "error", Value: "boom"}}})
	tr.record(Span{Name: "op", TraceID: 0x51ed, SpanID: 0x5e, DurationNS: 1_000,
		Attrs: []Attr{{Key: "shed", Value: int64(1)}}})

	kept := smp.Kept()
	if len(kept) != 3 {
		t.Fatalf("kept %d traces, want slow+error+shed: %+v", len(kept), kept)
	}
	byReason := map[string]KeptTrace{}
	for _, kt := range kept {
		byReason[kt.Reason] = kt
	}
	slow, ok := byReason[KeepSlow]
	if !ok || slow.TraceID != 0x5101 {
		t.Fatalf("slow keep = %+v", byReason)
	}
	if slow.ThresholdSeconds <= 0 || float64(slow.DurationNS)/1e9 <= slow.ThresholdSeconds {
		t.Fatalf("slow keep threshold %v vs duration %dns inconsistent", slow.ThresholdSeconds, slow.DurationNS)
	}
	if byReason[KeepError].TraceID != 0xe1 || byReason[KeepShed].TraceID != 0x51ed {
		t.Fatalf("error/shed keeps = %+v", byReason)
	}
	if smp.Trace(0x5101) == nil || smp.Trace(0xdead) != nil {
		t.Fatal("kept-trace lookup wrong")
	}
	if reg.Counter("sampler_kept_total", L("reason", KeepSlow)).Value() != 1 {
		t.Fatal("slow keep not counted")
	}
}

func TestSamplerKeptRingEvictionAndRekeep(t *testing.T) {
	reg := New()
	tr := NewTracer(64, reg)
	smp := NewSampler(reg, SamplerConfig{Capacity: 2})
	tr.SetSampler(smp)
	rec := func(id uint64) {
		tr.record(Span{Name: "op", TraceID: id, SpanID: id, DurationNS: 1,
			Attrs: []Attr{{Key: "error", Value: "x"}}})
	}
	rec(1)
	rec(2)
	rec(3) // evicts trace 1
	if smp.Trace(1) != nil {
		t.Fatal("oldest kept trace should have been evicted")
	}
	kept := smp.Kept()
	if len(kept) != 2 || kept[0].TraceID != 2 || kept[1].TraceID != 3 {
		t.Fatalf("kept after eviction = %+v", kept)
	}
	rec(2) // re-keep refreshes in place, no duplicate
	if kept = smp.Kept(); len(kept) != 2 {
		t.Fatalf("re-keep duplicated: %+v", kept)
	}
}

func TestSamplerForceKeepAndNilSafety(t *testing.T) {
	reg := New()
	tr := NewTracer(16, reg)
	smp := NewSampler(reg, SamplerConfig{})
	tr.SetSampler(smp)
	tc := tr.NewTrace()
	tr.StartSpan("hop", tc.Child()).End()
	smp.Keep(tr, tc, KeepShed)
	kept := smp.Kept()
	if len(kept) != 1 || kept[0].Reason != KeepShed {
		t.Fatalf("force keep = %+v", kept)
	}
	smp.Keep(tr, TraceContext{TraceID: 0xbeef, SpanID: 1}, KeepError) // no spans: no-op
	if len(smp.Kept()) != 1 {
		t.Fatal("keeping a spanless trace must no-op")
	}

	var nilS *Sampler
	if !nilS.admitHead() {
		t.Fatal("nil sampler must admit")
	}
	nilS.Keep(tr, tc, KeepError)
	if nilS.Kept() != nil || nilS.Trace(1) != nil {
		t.Fatal("nil sampler must read empty")
	}
}

func TestLogRingRetainsAndForwards(t *testing.T) {
	var sink bytes.Buffer
	r := NewLogRing(&sink, 3)
	if _, err := r.Write([]byte("one\ntwo\npar")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write([]byte("tial\n")); err != nil {
		t.Fatal(err)
	}
	if got := r.Lines(); len(got) != 3 || got[2] != "partial" {
		t.Fatalf("lines = %q", got)
	}
	if sink.String() != "one\ntwo\npartial\n" {
		t.Fatalf("forwarded = %q", sink.String())
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Write([]byte("x\n")); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Lines(); len(got) != 3 || got[0] != "x" {
		t.Fatalf("wrapped lines = %q", got)
	}

	var nilR *LogRing
	if n, err := nilR.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("nil ring write = %d %v", n, err)
	}
	if nilR.Lines() != nil {
		t.Fatal("nil ring must read empty")
	}
}

// buildFlightFixture assembles a full diagnosis plane around one
// registry: tracer+sampler with one errored kept trace, a sampled
// series store, and a log ring with a couple of records.
func buildFlightFixture(t *testing.T) (reg *Registry, src FlightSources, log *Logger) {
	t.Helper()
	reg = New()
	tr := NewTracer(32, reg)
	smp := NewSampler(reg, SamplerConfig{})
	tr.SetSampler(smp)
	tc := tr.NewTrace()
	tr.StartSpan("hop", tc.Child()).SetInt("wire_bytes", 128).End()
	tr.record(Span{Name: "infer", TraceID: tc.TraceID, SpanID: tc.SpanID, DurationNS: 5_000_000,
		Attrs: []Attr{{Key: "error", Value: "boom"}}})
	series := NewSeries(reg, SeriesConfig{Points: 16})
	reg.Counter("ops_total").Add(7)
	series.Sample()
	series.Sample()
	ring := NewLogRing(nil, 32)
	log = NewLogger(ring, "test", nil)
	log.Info("hello", "n", 1)
	log.Warn("uh oh")
	src = FlightSources{Registry: reg, Tracer: tr, Sampler: smp, Series: series, Logs: ring}
	return reg, src, log
}

func TestFlightRecorderDumpsOnSLOBreach(t *testing.T) {
	reg, src, log := buildFlightFixture(t)
	hist := reg.Histogram("infer_latency_seconds")
	for i := 0; i < 20; i++ {
		hist.Observe(0.5) // hopelessly above the objective below
	}
	slo, err := NewSLO(reg, "infer_latency", hist, 0.000001, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{Dir: dir, Window: time.Minute, Cooldown: time.Hour}, src, log)
	if err != nil {
		t.Fatal(err)
	}
	fr.WatchSLO("infer_latency", slo)
	fr.Check()

	bundles, err := fr.Bundles()
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles = %v err=%v, want exactly one", bundles, err)
	}
	if !strings.HasSuffix(bundles[0], "-slo_infer_latency") {
		t.Fatalf("bundle name %q should carry the reason", bundles[0])
	}
	bdir := filepath.Join(dir, bundles[0])

	var manifest FlightManifest
	readJSON(t, filepath.Join(bdir, "manifest.json"), &manifest)
	if manifest.Schema != FlightSchema || manifest.Reason != "slo_infer_latency" {
		t.Fatalf("manifest = %+v", manifest)
	}
	if manifest.Series == 0 || manifest.KeptTraces != 1 || manifest.LogLines != 2 {
		t.Fatalf("manifest counts = %+v", manifest)
	}

	var tsdb flightTSDB
	readJSON(t, filepath.Join(bdir, "tsdb.json"), &tsdb)
	if len(tsdb.Series) != manifest.Series || tsdb.WindowSeconds != 60 {
		t.Fatalf("tsdb.json = %d series window %v", len(tsdb.Series), tsdb.WindowSeconds)
	}

	var traces flightTraces
	readJSON(t, filepath.Join(bdir, "traces.json"), &traces)
	if len(traces.Kept) != 1 || traces.Kept[0].Reason != KeepError {
		t.Fatalf("traces.json kept = %+v", traces.Kept)
	}
	if len(traces.Kept[0].Tree) == 0 || traces.Kept[0].Tree[0].Name != "infer" {
		t.Fatalf("kept trace tree = %+v", traces.Kept[0].Tree)
	}
	if traces.TotalSpans == 0 || len(traces.RecentSpans) == 0 {
		t.Fatalf("recent span accounting = %+v", traces)
	}

	omf, err := os.Open(filepath.Join(bdir, "metrics.om"))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ParseOpenMetrics(omf)
	omf.Close()
	if err != nil || !exp.Terminated {
		t.Fatalf("metrics.om parse: %v terminated=%v", err, exp.Terminated)
	}
	if v, ok := exp.Value("ops_total"); !ok || v != 7 {
		t.Fatalf("metrics.om ops_total = %v ok=%v", v, ok)
	}

	logData, err := os.ReadFile(filepath.Join(bdir, "logs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logData)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"hello"`) {
		t.Fatalf("logs.jsonl = %q", lines)
	}
	for _, kind := range []string{"heap", "goroutine"} {
		st, err := os.Stat(filepath.Join(bdir, kind+".pprof"))
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s.pprof: %v size=%v", kind, err, st)
		}
	}

	// Still breached on the next pass: no transition, no second bundle.
	fr.Check()
	if bundles, _ = fr.Bundles(); len(bundles) != 1 {
		t.Fatalf("steady breach dumped again: %v", bundles)
	}
	if reg.Counter("flight_dumps_total", L("reason", "slo_infer_latency")).Value() != 1 {
		t.Fatal("dump counter wrong")
	}
}

func TestFlightRecorderHealthTransitionAndCooldown(t *testing.T) {
	reg, src, log := buildFlightFixture(t)
	h := NewHealth()
	var mu sync.Mutex
	failing := false
	warm := false
	h.Liveness("loop", func() error {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return errNotLive
		}
		return nil
	})
	h.Readiness("warm", func() error {
		mu.Lock()
		defer mu.Unlock()
		if !warm {
			return errNotLive
		}
		return nil
	})
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{Dir: dir, Cooldown: time.Hour}, src, log)
	if err != nil {
		t.Fatal(err)
	}
	fr.WatchHealth(h)
	// Startup-unready is not a breach: readiness has never been OK, so
	// no bundle fires even though Ready() currently fails.
	fr.Check()
	if bundles, _ := fr.Bundles(); len(bundles) != 0 {
		t.Fatalf("starting-up check dumped: %v", bundles)
	}
	mu.Lock()
	warm = true
	mu.Unlock()
	fr.Check() // fully healthy: still nothing
	if bundles, _ := fr.Bundles(); len(bundles) != 0 {
		t.Fatalf("healthy check dumped: %v", bundles)
	}
	mu.Lock()
	failing = true
	mu.Unlock()
	fr.Check()
	bundles, _ := fr.Bundles()
	if len(bundles) != 1 || !strings.HasSuffix(bundles[0], "-health_live") {
		t.Fatalf("bundles = %v, want one health_live", bundles)
	}
	// A different watcher breaching inside the cooldown is suppressed.
	fr.Watch("manual", func() bool { return true })
	fr.Check()
	if bundles, _ = fr.Bundles(); len(bundles) != 1 {
		t.Fatalf("cooldown not enforced: %v", bundles)
	}
	if reg.Counter("flight_suppressed_total").Value() != 1 {
		t.Fatal("suppression not counted")
	}
}

var errNotLive = errTest("telemetry: loop wedged")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestFlightRecorderRetentionAndNilSafety(t *testing.T) {
	_, src, log := buildFlightFixture(t)
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{Dir: dir, Retain: 2, Cooldown: time.Nanosecond}, src, log)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fr.Trigger("manual"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // distinct lexicographic stamps
	}
	bundles, err := fr.Bundles()
	if err != nil || len(bundles) != 2 {
		t.Fatalf("retained %v, want 2", bundles)
	}

	var nilFR *FlightRecorder
	nilFR.Check()
	nilFR.Watch("x", func() bool { return true })
	nilFR.Bind(nil, nil)
	if p, err := nilFR.Trigger("x"); p != "" || err != nil {
		t.Fatal("nil recorder must no-op")
	}
	if _, err := NewFlightRecorder(FlightConfig{}, src, log); err == nil {
		t.Fatal("missing dir must error")
	}
}

func TestFlightRecorderBindRunsOnCollect(t *testing.T) {
	reg, src, log := buildFlightFixture(t)
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{Dir: dir, Cooldown: time.Hour}, src, log)
	if err != nil {
		t.Fatal(err)
	}
	fr.Watch("always", func() bool { return true })
	col := NewCollector(reg)
	life := NewLifecycle()
	fr.Bind(col, life)
	col.Collect()
	if bundles, _ := fr.Bundles(); len(bundles) != 1 {
		t.Fatalf("collect pass did not dump: %v", bundles)
	}
	life.Close() // final check must not panic or double-dump
	if bundles, _ := fr.Bundles(); len(bundles) != 1 {
		t.Fatal("lifecycle close dumped again inside cooldown")
	}
}

func TestDebugTSDBAndKeptTraceEndpoints(t *testing.T) {
	reg := New()
	tr := NewTracer(1, reg) // tiny ring: traces wrap out immediately
	smp := NewSampler(reg, SamplerConfig{})
	tr.SetSampler(smp)
	series := NewSeries(reg, SeriesConfig{Points: 8})
	reg.Counter("ops_total").Add(3)
	series.Sample()

	tc := tr.NewTrace()
	tr.record(Span{Name: "infer", TraceID: tc.TraceID, SpanID: tc.SpanID, DurationNS: 10,
		Attrs: []Attr{{Key: "error", Value: "x"}}})
	tr.Start("filler").End() // wraps the 1-slot ring past the trace
	if tr.Trace(tc.TraceID) != nil {
		t.Fatal("fixture: trace should have left the ring")
	}

	srv, err := ServeDebug("127.0.0.1:0", reg, tr, nil, DebugOptions{Series: series, Sampler: smp})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string, wantCode int, out interface{}) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s decode: %v", path, err)
			}
		}
	}

	var list struct {
		Series []SeriesInfo `json:"series"`
	}
	get("/debug/tsdb", http.StatusOK, &list)
	if len(list.Series) == 0 {
		t.Fatal("tsdb list empty")
	}
	var data SeriesData
	get("/debug/tsdb?series=ops_total&window=1h", http.StatusOK, &data)
	if data.Name != "ops_total" || len(data.Points) != 1 || data.Last != 3 {
		t.Fatalf("tsdb query = %+v", data)
	}
	get("/debug/tsdb?series=missing", http.StatusNotFound, nil)
	get("/debug/tsdb?series=ops_total&window=banana", http.StatusBadRequest, nil)

	var keptResp struct {
		Kept []struct {
			TraceHex string `json:"trace_id"`
			Reason   string `json:"reason"`
		} `json:"kept"`
	}
	get("/debug/traces", http.StatusOK, &keptResp)
	if len(keptResp.Kept) != 1 || keptResp.Kept[0].Reason != KeepError {
		t.Fatalf("kept listing = %+v", keptResp)
	}

	// The ring lost the trace, but /debug/trace/{id} falls back to the
	// sampler's kept copy.
	var tree struct {
		Spans []*TraceNode `json:"spans"`
	}
	get("/debug/trace/"+keptResp.Kept[0].TraceHex, http.StatusOK, &tree)
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "infer" {
		t.Fatalf("kept-trace fallback tree = %+v", tree.Spans)
	}

	// Index renders the sparkline table when a store is attached.
	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	var idx bytes.Buffer
	_, _ = idx.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(idx.String(), "recent series") || !strings.Contains(idx.String(), "ops_total") {
		t.Fatalf("index missing sparkline table:\n%s", idx.String())
	}
}

func TestDebugTSDBDetachedEndpoints(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", New(), NewTracer(4, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/tsdb", "/debug/traces"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without attachment = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHistogramConcurrentCumulativeObserve drives Observe,
// ObserveExemplar, Cumulative, Exemplars and Quantile concurrently —
// meaningful under -race (the make race gate runs it there).
func TestHistogramConcurrentCumulativeObserve(t *testing.T) {
	h := newHistogram()
	bounds := ExportBounds()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if i%2 == 0 {
					h.Observe(float64(i%17) * 0.001)
				} else {
					h.ObserveExemplar(float64(i%17)*0.001, uint64(w*1000+i))
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					cums := h.Cumulative(bounds)
					for i := 1; i < len(cums); i++ {
						if cums[i] < cums[i-1] {
							t.Error("cumulative counts not monotone")
							return
						}
					}
					_ = h.Exemplars(bounds)
					_ = h.Quantile(0.95)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", h.Count())
	}
	exs := h.Exemplars(bounds)
	found := false
	for _, e := range exs {
		if e.Valid && e.TraceID != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no exemplar survived concurrent observation")
	}
}

// readJSON decodes one JSON file into out.
func readJSON(t *testing.T, path string, out interface{}) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
