package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// TraceContext identifies one operation's position in a distributed
// trace: the trace it belongs to, its own span id, and its parent's
// span id (0 for a root). Contexts are small values designed to cross
// process and wire boundaries — internal/wire carries them in an
// optional frame header so a query entering a leaf node keeps one
// trace id through every gateway and central hop.
type TraceContext struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
}

// Valid reports whether the context carries a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// String renders the context as traceID/spanID hex, the form the debug
// endpoints use.
func (tc TraceContext) String() string {
	return fmt.Sprintf("%016x/%016x", tc.TraceID, tc.SpanID)
}

// idCounter hands out process-unique ids: a random 64-bit base drawn
// once at startup plus an atomic increment, so ids never repeat within
// a process and almost surely never collide across nodes.
var idCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idCounter.Store(0x9e3779b97f4a7c15) // fixed fallback; ids stay unique in-process
	}
}

// newID returns a fresh non-zero id.
func newID() uint64 {
	for {
		if id := idCounter.Add(1); id != 0 {
			return id
		}
	}
}

// NewTraceContext opens a fresh root trace context.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newID(), SpanID: newID()}
}

// Child derives a context for a sub-operation: same trace, fresh span
// id, parented on tc. A child of the zero context is another zero
// context, so disabled tracing propagates as "no trace".
func (tc TraceContext) Child() TraceContext {
	if !tc.Valid() {
		return TraceContext{}
	}
	return TraceContext{TraceID: tc.TraceID, SpanID: newID(), ParentID: tc.SpanID}
}

// StartSpan opens a span bound to a trace context: the span records the
// context's trace/span/parent ids and is retrievable via Trace and the
// /debug/trace/{id} endpoint. Returns nil (a no-op handle) on a nil
// tracer. Without a sampler a zero context degrades to a plain
// un-traced span; with one attached a zero context means the trace was
// head-dropped, so no span materializes at all and the unsampled path
// pays nothing past this nil check.
func (t *Tracer) StartSpan(name string, tc TraceContext) *SpanHandle {
	if t == nil {
		return nil
	}
	if !tc.Valid() && t.getSampler() != nil {
		return nil
	}
	h := t.Start(name)
	h.span.TraceID = tc.TraceID
	h.span.SpanID = tc.SpanID
	h.span.ParentID = tc.ParentID
	return h
}

// NewTrace opens a root context. On a nil tracer it returns the zero
// context, so callers can thread the result through Child/StartSpan
// unconditionally without consuming ids while tracing is disabled.
// With a sampler attached, NewTrace is also the head decision point:
// a head-dropped operation gets the zero context, which propagates as
// "no trace" — Child stays zero, StartSpan returns nil, and the wire
// layer emits no trace block.
func (t *Tracer) NewTrace() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	if s := t.getSampler(); s != nil && !s.admitHead() {
		return TraceContext{}
	}
	return NewTraceContext()
}

// Trace returns every retained span with the given trace id, ordered by
// completion sequence. Nil on a nil tracer or when no spans match.
func (t *Tracer) Trace(traceID uint64) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.Spans() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// TraceNode is one span in an assembled trace tree.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree assembles the retained spans of a trace into parent/child
// trees. Spans that started the trace (parent id 0) become roots;
// spans whose parent rotated out of the ring are collected under a
// synthetic "orphaned" root (attr orphaned=true) instead of being
// silently promoted — a wrapped ring no longer masquerades as extra
// roots. Roots and children are ordered by completion sequence. Nil on
// a nil tracer or an unknown trace id.
func (t *Tracer) TraceTree(traceID uint64) []*TraceNode {
	return AssembleTraceTree(t.Trace(traceID))
}

// AssembleTraceTree builds parent/child trees from one trace's spans —
// the shared assembly behind Tracer.TraceTree, the kept-trace fallback
// of /debug/trace/{id}, and the flight recorder's trace dump.
func AssembleTraceTree(spans []Span) []*TraceNode {
	if len(spans) == 0 {
		return nil
	}
	nodes := make([]*TraceNode, len(spans))
	byID := make(map[uint64]*TraceNode, len(spans))
	for i := range spans {
		nodes[i] = &TraceNode{Span: spans[i]}
		if id := spans[i].SpanID; id != 0 {
			byID[id] = nodes[i]
		}
	}
	var roots, orphans []*TraceNode
	for _, n := range nodes {
		if n.ParentID == 0 {
			roots = append(roots, n)
			continue
		}
		if parent, ok := byID[n.ParentID]; ok && parent != n {
			parent.Children = append(parent.Children, n)
			continue
		}
		orphans = append(orphans, n)
	}
	for _, n := range nodes {
		sort.SliceStable(n.Children, func(i, j int) bool { return n.Children[i].Seq < n.Children[j].Seq })
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Seq < roots[j].Seq })
	if len(orphans) > 0 {
		sort.SliceStable(orphans, func(i, j int) bool { return orphans[i].Seq < orphans[j].Seq })
		roots = append(roots, &TraceNode{
			Span: Span{
				Name:    "orphaned",
				TraceID: spans[0].TraceID,
				Attrs:   []Attr{{Key: "orphaned", Value: true}},
			},
			Children: orphans,
		})
	}
	return roots
}
