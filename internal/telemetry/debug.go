package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON (the -metrics-out / BENCH_*.json format).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Stat()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// FileSnapshot is the on-disk shape written by WriteSnapshotFile: the
// metric snapshot plus the retained trace spans and a timestamp, so a
// benchmark run leaves a machine-readable trajectory behind.
type FileSnapshot struct {
	WrittenAt time.Time `json:"written_at"`
	Metrics   Snapshot  `json:"metrics"`
	Spans     []Span    `json:"spans,omitempty"`
	// TotalSpans counts all spans ever recorded, including those that
	// rotated out of the retained ring.
	TotalSpans int64 `json:"total_spans,omitempty"`
}

// WriteSnapshotFile writes a FileSnapshot of reg (and tr's retained
// spans, if non-nil) to path. Used by the cmd binaries' -metrics-out
// flag.
func WriteSnapshotFile(path string, reg *Registry, tr *Tracer) error {
	snap := FileSnapshot{
		WrittenAt:  time.Now().UTC(),
		Metrics:    reg.Snapshot(),
		Spans:      tr.Spans(),
		TotalSpans: tr.Total(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: write snapshot: %w", err)
	}
	return nil
}

// Publish registers the registry under name in the process-global
// expvar namespace (visible at /debug/vars). Publishing the same name
// twice is a no-op, so tests and long-lived processes can call it
// freely.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}

// writeJSONError emits a JSON error body ({"error": "..."}), so
// programmatic consumers of the debug endpoints never have to parse
// plain-text error pages.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: msg})
}

// healthHandler serves one health endpoint: 200 with the status body
// when every probe passes, 503 otherwise.
func healthHandler(eval func() HealthStatus) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		st := eval()
		w.Header().Set("Content-Type", "application/json")
		if !st.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	}
}

// DebugOptions attaches the diagnosis plane to a debug mux: the
// time-series store behind /debug/tsdb (and the index's sparkline
// table), and the tail sampler behind /debug/traces (kept traces) and
// the /debug/trace/{id} fallback once the tracer's ring has wrapped.
type DebugOptions struct {
	Series  *Series
	Sampler *Sampler
}

// mergeDebugOptions folds the variadic options (a backward-compatible
// extension point — existing call sites pass none) into one.
func mergeDebugOptions(opts []DebugOptions) DebugOptions {
	var out DebugOptions
	for _, o := range opts {
		if o.Series != nil {
			out.Series = o.Series
		}
		if o.Sampler != nil {
			out.Sampler = o.Sampler
		}
	}
	return out
}

// NewDebugMux builds the debug-server handler: the OpenMetrics
// exposition at /metrics, liveness and readiness probes at /healthz
// and /readyz (h may be nil: both then report ok with no components),
// expvar at /debug/vars, pprof under /debug/pprof/, the registry
// snapshot at /debug/metrics, the retained trace spans at
// /debug/spans, assembled per-trace span trees at
// /debug/trace/{trace-id} (hex or decimal id), and — when DebugOptions
// attach them — the time-series store at /debug/tsdb and the tail
// sampler's kept traces at /debug/traces.
func NewDebugMux(reg *Registry, tr *Tracer, h *Health, opts ...DebugOptions) *http.ServeMux {
	opt := mergeDebugOptions(opts)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypeOpenMetrics)
		_ = reg.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/healthz", healthHandler(h.Live))
	mux.HandleFunc("/readyz", healthHandler(h.Ready))
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, req *http.Request) {
		idStr := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
		id, err := strconv.ParseUint(idStr, 16, 64)
		if err != nil {
			if id, err = strconv.ParseUint(idStr, 10, 64); err != nil {
				writeJSONError(w, http.StatusBadRequest, "telemetry: trace id must be hex or decimal")
				return
			}
		}
		tree := tr.TraceTree(id)
		if tree == nil {
			// The ring may have wrapped past the trace; the tail
			// sampler keeps the interesting ones longer.
			tree = AssembleTraceTree(opt.Sampler.Trace(id))
		}
		if tree == nil {
			writeJSONError(w, http.StatusNotFound, fmt.Sprintf("telemetry: no retained spans for trace %016x", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			TraceID string       `json:"trace_id"`
			Spans   []*TraceNode `json:"spans"`
		}{TraceID: fmt.Sprintf("%016x", id), Spans: tree})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total int64  `json:"total"`
			Spans []Span `json:"spans"`
		}{Total: tr.Total(), Spans: tr.Spans()})
	})
	mux.HandleFunc("/debug/tsdb", func(w http.ResponseWriter, req *http.Request) {
		if opt.Series == nil {
			writeJSONError(w, http.StatusNotFound, "telemetry: no time-series store attached")
			return
		}
		q := req.URL.Query()
		window := time.Duration(0)
		if ws := q.Get("window"); ws != "" {
			var err error
			if window, err = time.ParseDuration(ws); err != nil {
				writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("telemetry: bad window %q: %v", ws, err))
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		name := q.Get("series")
		if name == "" {
			_ = enc.Encode(struct {
				Series []SeriesInfo `json:"series"`
			}{Series: opt.Series.List()})
			return
		}
		data, ok := opt.Series.Query(name, window)
		if !ok {
			writeJSONError(w, http.StatusNotFound, fmt.Sprintf("telemetry: unknown series %q", name))
			return
		}
		_ = enc.Encode(data)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		if opt.Sampler == nil {
			writeJSONError(w, http.StatusNotFound, "telemetry: no tail sampler attached")
			return
		}
		kept := opt.Sampler.Kept()
		type keptSummary struct {
			TraceHex   string  `json:"trace_id"`
			Root       string  `json:"root"`
			Reason     string  `json:"reason"`
			DurationNS int64   `json:"duration_ns"`
			Threshold  float64 `json:"threshold_seconds,omitempty"`
			Spans      int     `json:"spans"`
		}
		out := make([]keptSummary, 0, len(kept))
		for _, kt := range kept {
			out = append(out, keptSummary{
				TraceHex:   kt.TraceHex,
				Root:       kt.Root,
				Reason:     kt.Reason,
				DurationNS: kt.DurationNS,
				Threshold:  kt.ThresholdSeconds,
				Spans:      len(kt.Spans),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Kept []keptSummary `json:"kept"`
		}{Kept: out})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "edgehd debug server\n\n"+
			"/metrics           OpenMetrics exposition (with exemplars)\n"+
			"/healthz           liveness probes (JSON, 503 when failing)\n"+
			"/readyz            readiness probes (JSON, 503 when failing)\n"+
			"/debug/metrics     JSON metrics snapshot\n"+
			"/debug/spans       recent trace spans\n"+
			"/debug/trace/{id}  assembled trace tree (hex id)\n"+
			"/debug/traces      tail-sampled kept traces\n"+
			"/debug/tsdb        time-series store (?series=NAME&window=60s)\n"+
			"/debug/vars        expvar\n"+
			"/debug/pprof/      pprof profiles\n")
		if rows := opt.Series.Sparklines(0, 32); len(rows) > 0 {
			fmt.Fprint(w, "\nrecent series (oldest→newest):\n")
			for _, row := range rows {
				fmt.Fprintf(w, "%-52s %-32s last=%s\n", row.Name, row.Spark, formatValue(row.Last))
			}
		}
	})
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the server's listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts the debug server on addr (e.g. "localhost:6060" or
// "127.0.0.1:0") serving NewDebugMux(reg, tr, h) in a background
// goroutine (h may be nil — the health endpoints then report ok). The
// caller owns the returned server and should Close it.
func ServeDebug(addr string, reg *Registry, tr *Tracer, h *Health, opts ...DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg, tr, h, opts...)}
	// Serve blocks until Close shuts the listener down, which is the
	// goroutine's bounded lifetime — there is no separate signal to tie
	// it to.
	go func() { _ = srv.Serve(ln) }() //hdlint:allow goroutine-leak exits when DebugServer.Close stops the listener
	return &DebugServer{srv: srv, ln: ln}, nil
}
