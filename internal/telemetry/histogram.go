package telemetry

import (
	"math"
	"sync"
	"time"
)

// Histogram bucket layout: bucket 0 holds values ≤ histMin; bucket i>0
// holds (histMin·growth^(i−1), histMin·growth^i]. With growth 1.15 and
// 384 buckets the range spans ~1e-9 (nanoseconds, expressed in
// seconds) up past 1e14 (byte counts of very large transfers) with
// ≤7.5% relative quantile error — plenty for latency and size
// distributions.
const (
	histBuckets = 384
	histMin     = 1e-9
	histGrowth  = 1.15
)

var logGrowth = math.Log(histGrowth)

// Histogram is a streaming log-bucketed histogram tracking count, sum,
// min, max and approximate quantiles. All methods are safe on a nil
// receiver and safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
	// exemplars holds the most recent (trace_id, value) observation per
	// internal bucket. The slice is allocated on the first exemplared
	// observation, so histograms that never see a trace id pay nothing.
	exemplars []exemplar
	exSeq     int64
}

// exemplar is one retained (trace_id, value) observation; seq orders
// exemplars across buckets so folding picks the most recent.
type exemplar struct {
	traceID uint64
	value   float64
	seq     int64
}

func newHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	i := int(math.Log(v/histMin)/logGrowth) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketMid returns a representative value for bucket i: the geometric
// mean of its bounds (histMin for bucket 0).
func bucketMid(i int) float64 {
	if i == 0 {
		return histMin
	}
	lo := histMin * math.Pow(histGrowth, float64(i-1))
	return lo * math.Sqrt(histGrowth)
}

// Observe records one value. Negative values clamp into the lowest
// bucket (durations and sizes are non-negative by construction).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketIndex(v)]++
	h.mu.Unlock()
}

// ObserveExemplar records one value and retains (traceID, v) as the
// most recent exemplar of the value's bucket, linking the bucket to a
// concrete trace in the OpenMetrics exposition. A zero trace id
// degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	if traceID == 0 {
		h.Observe(v)
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := bucketIndex(v)
	h.buckets[i]++
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, histBuckets)
	}
	h.exSeq++
	h.exemplars[i] = exemplar{traceID: traceID, value: v, seq: h.exSeq}
	h.mu.Unlock()
}

// BucketExemplar is one export bucket's exemplar: the most recent
// (trace_id, value) observation among the internal buckets folded into
// that bound. Valid is false when the bucket has no exemplar.
type BucketExemplar struct {
	TraceID uint64
	Value   float64
	Valid   bool
}

// Exemplars returns one exemplar per export bucket for the given
// bounds (sorted ascending, as in Cumulative) plus a final entry for
// the implicit +Inf bucket — len(bounds)+1 results. Nil on a nil
// receiver or when no exemplars were ever observed.
func (h *Histogram) Exemplars(bounds []float64) []BucketExemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	out := make([]BucketExemplar, len(bounds)+1)
	bi := 0
	fold := func(slot int, limit float64) {
		best := exemplar{}
		for bi < histBuckets && bucketUpper(bi) <= limit {
			if e := h.exemplars[bi]; e.seq > best.seq {
				best = e
			}
			bi++
		}
		if best.seq > 0 {
			out[slot] = BucketExemplar{TraceID: best.traceID, Value: best.value, Valid: true}
		}
	}
	for i, bound := range bounds {
		fold(i, bound)
	}
	fold(len(bounds), math.Inf(1))
	return out
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the
// observations, 0 when the histogram is empty or nil. The estimate is
// the representative value of the bucket containing the q·count-th
// observation, clamped to the exact observed min/max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// ExportBounds are the canonical `le` upper bounds the OpenMetrics
// exporter publishes: one decade per bucket from 1 ns (durations in
// seconds) up to 1e12 (byte counts of very large transfers), plus the
// implicit +Inf bucket. The internal log-bucket resolution (growth
// 1.15) is much finer, so folding it onto decades keeps the exposition
// compact while staying monotone and consistent with _count.
func ExportBounds() []float64 {
	out := make([]float64, 0, 22)
	for e := -9; e <= 12; e++ {
		out = append(out, math.Pow(10, float64(e)))
	}
	return out
}

// Cumulative returns, for each upper bound in `bounds` (which must be
// sorted ascending), the number of observations recorded in internal
// buckets whose upper edge does not exceed the bound — a monotone
// under-approximation of count(v ≤ bound) with at most one internal
// bucket (≤7.5% relative) of error. Returns nil on a nil receiver.
func (h *Histogram) Cumulative(bounds []float64) []int64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(bounds))
	var cum int64
	bi := 0 // next internal bucket to fold in
	for i, bound := range bounds {
		for bi < histBuckets && bucketUpper(bi) <= bound {
			cum += h.buckets[bi]
			bi++
		}
		out[i] = cum
	}
	return out
}

// bucketUpper returns the upper edge of internal bucket i. The last
// bucket is a catch-all whose edge is +Inf, so every observation folds
// into some finite cumulative count only at the implicit +Inf bound.
func bucketUpper(i int) float64 {
	if i == 0 {
		return histMin
	}
	if i == histBuckets-1 {
		return math.Inf(1)
	}
	return histMin * math.Pow(histGrowth, float64(i))
}

// noopStop is the shared stop function returned by StartTimer on a
// nil receiver, keeping the disabled path allocation-free.
var noopStop = func() {}

// StartTimer captures the current time and returns a stop function
// that observes the elapsed seconds. On a nil receiver it returns a
// shared no-op, so unconditionally instrumented hot paths cost one nil
// check when telemetry is off. Deterministic packages (hdc, encoding,
// core, hierarchy) time themselves through this helper instead of
// importing time directly; the clock stays confined to telemetry.
func (h *Histogram) StartTimer() func() {
	if h == nil {
		return noopStop
	}
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// StartTimerExemplar is StartTimer with the eventual observation
// linked to a trace: the recorded duration carries traceID as its
// bucket exemplar (plain Observe when traceID is 0, so head-dropped
// traces cost nothing extra).
func (h *Histogram) StartTimerExemplar(traceID uint64) func() {
	if h == nil {
		return noopStop
	}
	t0 := time.Now()
	return func() { h.ObserveExemplar(time.Since(t0).Seconds(), traceID) }
}

// HistogramStat is a point-in-time summary of a Histogram.
type HistogramStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stat summarizes the histogram (zero value on nil or empty).
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramStat{}
	}
	return HistogramStat{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.sum / float64(h.count),
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
