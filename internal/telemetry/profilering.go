package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileRing captures periodic pprof profiles — heap and goroutine
// snapshots, plus short CPU windows — into a bounded on-disk ring:
// files are named <kind>-<utc timestamp>.pprof and the oldest beyond
// the retention limit are pruned after every capture, so a soak run of
// hours leaves a fixed-size trail of recent profiles to diff a leak or
// a regression against (`go tool pprof dir/heap-....pprof`).
//
// A nil *ProfileRing is a valid "profiling disabled" ring: every
// method no-ops and Start returns a no-op stop.
type ProfileRing struct {
	dir    string
	retain int
	log    *Logger

	captures *Counter
	pruned   *Counter
	errs     *Counter

	// mu serializes captures and prunes; the background loop and any
	// manual Capture calls share the directory.
	mu sync.Mutex
}

// profileKinds are the snapshot profiles captured on every pass. CPU
// is separate: it needs a sampling window, not a point-in-time dump.
var profileKinds = []string{"heap", "goroutine"}

// NewProfileRing returns a ring writing into dir (created if missing),
// keeping at most retain files per profile kind (default 8). A nil
// registry is allowed — capture counters are simply not published.
func NewProfileRing(dir string, retain int, reg *Registry, log *Logger) (*ProfileRing, error) {
	if dir == "" {
		return nil, fmt.Errorf("telemetry: profile ring needs a directory")
	}
	if retain < 1 {
		retain = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile ring dir: %w", err)
	}
	reg.SetHelp("profile_captures_total", "pprof profiles captured into the on-disk ring, by kind")
	reg.SetHelp("profile_pruned_total", "pprof profiles deleted by the ring's retention limit")
	reg.SetHelp("profile_capture_errors_total", "failed pprof capture attempts")
	return &ProfileRing{
		dir:      dir,
		retain:   retain,
		log:      log,
		captures: reg.Counter("profile_captures_total"),
		pruned:   reg.Counter("profile_pruned_total"),
		errs:     reg.Counter("profile_capture_errors_total"),
	}, nil
}

// stamp renders a capture timestamp that sorts lexicographically in
// capture order, so retention can prune by sorted filename.
func stamp() string { return time.Now().UTC().Format("20060102T150405.000000000") }

// Capture writes one heap and one goroutine profile into the ring and
// prunes beyond the retention limit. The lock is intentionally held
// across the file writes: the ring's whole contract is that captures
// and pruning serialize, so two callers never interleave half-written
// profiles or prune each other's fresh files.
func (p *ProfileRing) Capture() error {
	if p == nil {
		return nil
	}
	p.mu.Lock() //hdlint:allow lock-across-io captures serialize ring mutation by design
	defer p.mu.Unlock()
	ts := stamp()
	for _, kind := range profileKinds {
		prof := pprof.Lookup(kind)
		if prof == nil {
			p.errs.Add(1)
			return fmt.Errorf("telemetry: unknown profile kind %q", kind)
		}
		path := filepath.Join(p.dir, kind+"-"+ts+".pprof")
		f, err := os.Create(path)
		if err != nil {
			p.errs.Add(1)
			return fmt.Errorf("telemetry: profile capture: %w", err)
		}
		err = prof.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			p.errs.Add(1)
			return fmt.Errorf("telemetry: writing %s profile: %w", kind, err)
		}
		p.captures.Add(1)
	}
	return p.pruneLocked()
}

// CaptureCPU samples a CPU profile for the given window (minimum 10ms)
// into the ring. Only one CPU profile can be active per process; a
// concurrent profiler (e.g. an in-flight /debug/pprof/profile scrape)
// makes this attempt fail, which is counted and reported, not fatal to
// the ring's loop.
func (p *ProfileRing) CaptureCPU(window time.Duration) error {
	if p == nil {
		return nil
	}
	if window < 10*time.Millisecond {
		window = 10 * time.Millisecond
	}
	// Held across the sampling window on purpose: see Capture.
	p.mu.Lock() //hdlint:allow lock-across-io captures serialize ring mutation by design
	defer p.mu.Unlock()
	path := filepath.Join(p.dir, "cpu-"+stamp()+".pprof")
	f, err := os.Create(path)
	if err != nil {
		p.errs.Add(1)
		return fmt.Errorf("telemetry: cpu profile capture: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		p.errs.Add(1)
		return fmt.Errorf("telemetry: cpu profile busy: %w", err)
	}
	time.Sleep(window)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.errs.Add(1)
		return fmt.Errorf("telemetry: cpu profile close: %w", err)
	}
	p.captures.Add(1)
	return p.pruneLocked()
}

// pruneLocked deletes the oldest files of each kind beyond the
// retention limit. Caller holds p.mu.
func (p *ProfileRing) pruneLocked() error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return fmt.Errorf("telemetry: profile ring prune: %w", err)
	}
	byKind := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".pprof") {
			continue
		}
		kind, _, ok := strings.Cut(name, "-")
		if !ok {
			continue
		}
		byKind[kind] = append(byKind[kind], name)
	}
	kinds := make([]string, 0, len(byKind))
	for kind := range byKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		names := byKind[kind]
		if len(names) <= p.retain {
			continue
		}
		sort.Strings(names) // timestamp format sorts oldest first
		for _, name := range names[:len(names)-p.retain] {
			if err := os.Remove(filepath.Join(p.dir, name)); err != nil {
				return fmt.Errorf("telemetry: profile ring prune: %w", err)
			}
			p.pruned.Add(1)
		}
	}
	return nil
}

// Files returns the ring's current profile filenames, sorted. It reads
// the directory without taking the ring lock: p.dir is immutable after
// construction, each directory read is atomic on its own, and a listing
// that races a concurrent capture is merely a snapshot from a moment
// earlier — while holding the lock here would stall debug-endpoint
// listings behind a full CPU sampling window.
func (p *ProfileRing) Files() ([]string, error) {
	if p == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("telemetry: profile ring list: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".pprof") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Start launches the background capture loop: one heap+goroutine
// capture every interval (minimum 1s), plus a CPU window per pass when
// cpuWindow > 0. An immediate synchronous capture seeds the ring.
// Returns a stop function; on a nil ring both are no-ops.
func (p *ProfileRing) Start(interval, cpuWindow time.Duration) func() {
	if p == nil {
		return noopStop
	}
	if interval < time.Second {
		interval = time.Second
	}
	if err := p.Capture(); err != nil {
		p.log.Warn("profile capture failed", "error", err.Error())
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := p.Capture(); err != nil {
					p.log.Warn("profile capture failed", "error", err.Error())
				}
				if cpuWindow > 0 {
					if err := p.CaptureCPU(cpuWindow); err != nil {
						p.log.Warn("cpu profile capture failed", "error", err.Error())
					}
				}
			}
		}
	}()
	return func() { close(done) }
}
