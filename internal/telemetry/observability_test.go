package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// hexID renders a trace/span id the way the logger and the trace
// endpoints do.
func hexID(id uint64) string { return fmt.Sprintf("%016x", id) }

// decodeLines parses each line of a JSON-lines log buffer, failing the
// test on any line that is not a valid JSON object.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not valid JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestLoggerEmitsJSONWithComponentAndLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "edgehd", slog.LevelInfo)
	log.Debug("filtered out")
	log.Info("hello", "answer", 42)
	log.Warn("careful")
	log.Error("broken", "error", "boom")

	recs := decodeLines(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (debug filtered): %v", len(recs), recs)
	}
	if recs[0]["component"] != "edgehd" || recs[0]["msg"] != "hello" || recs[0]["answer"] != float64(42) {
		t.Errorf("info record = %v", recs[0])
	}
	for i, want := range []string{"INFO", "WARN", "ERROR"} {
		if recs[i]["level"] != want {
			t.Errorf("record %d level = %v, want %s", i, recs[i]["level"], want)
		}
	}
	if log.Enabled(slog.LevelDebug) {
		t.Error("Enabled(debug) = true on an info-level logger")
	}
	if !log.Enabled(slog.LevelWarn) {
		t.Error("Enabled(warn) = false on an info-level logger")
	}
}

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "edgehd", slog.LevelDebug)
	tr := NewTracer(8, nil)
	root := tr.NewTrace()
	child := root.Child()
	log.WithTrace(child).Info("hop done")
	// An invalid context adds no correlation attributes.
	log.WithTrace(TraceContext{}).Info("untraced")

	recs := decodeLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	traced := recs[0]
	wantTrace := hexID(child.TraceID)
	if traced["trace_id"] != wantTrace || traced["span_id"] != hexID(child.SpanID) || traced["parent_span_id"] != hexID(child.ParentID) {
		t.Errorf("trace attrs = %v, want trace_id %s", traced, wantTrace)
	}
	if _, ok := recs[1]["trace_id"]; ok {
		t.Errorf("untraced record carries trace_id: %v", recs[1])
	}
}

func TestLoggerWithNodeAndComponentOverride(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "edgehd", slog.LevelInfo)
	log.WithComponent("cluster").WithNode(3).Info("worker ready")

	recs := decodeLines(t, &buf)
	// encoding/json keeps the last duplicate key, which is the most
	// specific component — exactly the read the doc promises pipelines.
	if recs[0]["component"] != "cluster" || recs[0]["node"] != float64(3) {
		t.Errorf("record = %v", recs[0])
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var log *Logger
	log.Debug("x")
	log.Info("x")
	log.Warn("x")
	log.Error("x")
	if log.With("k", "v") != nil || log.WithComponent("c") != nil ||
		log.WithNode(1) != nil || log.WithTrace(TraceContext{}) != nil {
		t.Error("derivations of a nil logger must stay nil")
	}
	if log.Enabled(slog.LevelError) {
		t.Error("nil logger reports Enabled")
	}
	if NewLogger(nil, "x", slog.LevelInfo) != nil {
		t.Error("NewLogger(nil writer) must return the disabled logger")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted an unknown level")
	}
}

func TestHealthRegistryTransitions(t *testing.T) {
	h := NewHealth()
	if st := h.Live(); !st.OK || st.Status != "ok" {
		t.Fatalf("empty registry not ok: %+v", st)
	}
	failing := errors.New("health: collector wedged")
	h.Liveness("collector", func() error { return failing })
	h.Readiness("model", func() error { return nil })
	if st := h.Live(); st.OK || st.Components["collector"] != failing.Error() {
		t.Fatalf("failing liveness not reported: %+v", st)
	}
	if st := h.Ready(); !st.OK || st.Components["model"] != "ok" {
		t.Fatalf("readiness tainted by liveness: %+v", st)
	}
	// Replacing the probe restores health.
	h.Liveness("collector", func() error { return nil })
	if st := h.Live(); !st.OK {
		t.Fatalf("replaced probe still failing: %+v", st)
	}

	var nilH *Health
	nilH.Liveness("x", func() error { return errors.New("health: x") })
	if st := nilH.Live(); !st.OK {
		t.Error("nil health registry must report ok")
	}
	if st := nilH.Ready(); !st.OK {
		t.Error("nil health registry must report ready")
	}
}

func TestHeartbeatStaleness(t *testing.T) {
	b := NewHeartbeat(2 * time.Second)
	if err := b.Check(); err != nil {
		t.Fatalf("fresh heartbeat failed: %v", err)
	}
	b.last.Store(time.Now().Add(-3 * time.Second).UnixNano())
	if err := b.Check(); err == nil {
		t.Fatal("stale heartbeat passed")
	}
	b.Beat()
	if err := b.Check(); err != nil {
		t.Fatalf("re-beaten heartbeat failed: %v", err)
	}
	var nilB *Heartbeat
	nilB.Beat()
	if err := nilB.Check(); err != nil {
		t.Errorf("nil heartbeat failed: %v", err)
	}
}

func TestSLOGaugesTrackAttainment(t *testing.T) {
	reg := New()
	hist := reg.Histogram("infer_seconds")
	s, err := NewSLO(reg, "infer", hist, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// No observations yet: nothing has violated the objective.
	if v := reg.Gauge("slo_attainment_ratio", L("slo", "infer")).Value(); v != 1 {
		t.Fatalf("initial attainment = %v, want 1", v)
	}
	for i := 0; i < 8; i++ {
		hist.Observe(0.01) // well within the objective
	}
	hist.Observe(10)
	hist.Observe(10) // two clear violations
	s.Collect()
	att := reg.Gauge("slo_attainment_ratio", L("slo", "infer")).Value()
	if att <= 0 || att >= 1 {
		t.Fatalf("attainment = %v, want strictly inside (0,1)", att)
	}
	budget := reg.Gauge("slo_error_budget_remaining_ratio", L("slo", "infer")).Value()
	if want := 1 - (1-att)/(1-0.9); math.Abs(budget-want) > 1e-9 {
		t.Fatalf("budget = %v, want ~%v", budget, want)
	}
	if n := reg.Gauge("slo_observations", L("slo", "infer")).Value(); n != 10 {
		t.Fatalf("observations = %v, want 10", n)
	}
	if v := reg.Gauge("slo_objective_seconds", L("slo", "infer")).Value(); v != 0.1 {
		t.Fatalf("objective gauge = %v", v)
	}

	if _, err := NewSLO(reg, "bad", hist, 0, 0.9); err == nil {
		t.Error("zero objective accepted")
	}
	if _, err := NewSLO(reg, "bad", hist, 1, 1.5); err == nil {
		t.Error("target outside (0,1) accepted")
	}
	disabled, err := NewSLO(nil, "off", nil, 1, 0.5)
	if err != nil || disabled != nil {
		t.Errorf("nil registry should yield a disabled SLO, got %v, %v", disabled, err)
	}
	disabled.Collect() // must not panic
}

func TestProfileRingCaptureAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg := New()
	ring, err := NewProfileRing(dir, 2, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ring.Capture(); err != nil {
			t.Fatal(err)
		}
	}
	files, err := ring.Files()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, f := range files {
		kind, _, _ := strings.Cut(f, "-")
		kinds[kind]++
	}
	if kinds["heap"] != 2 || kinds["goroutine"] != 2 {
		t.Fatalf("retention kept %v, want 2 heap + 2 goroutine", kinds)
	}
	if got := reg.Counter("profile_captures_total").Value(); got != 6 {
		t.Errorf("captures counter = %d, want 6", got)
	}
	if got := reg.Counter("profile_pruned_total").Value(); got != 2 {
		t.Errorf("pruned counter = %d, want 2", got)
	}

	if err := ring.CaptureCPU(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	files, _ = ring.Files()
	cpu := 0
	for _, f := range files {
		if strings.HasPrefix(f, "cpu-") {
			cpu++
		}
	}
	if cpu != 1 {
		t.Fatalf("cpu profiles = %d, want 1: %v", cpu, files)
	}

	if _, err := NewProfileRing("", 2, reg, nil); err == nil {
		t.Error("empty dir accepted")
	}
	var nilRing *ProfileRing
	if err := nilRing.Capture(); err != nil {
		t.Errorf("nil ring Capture: %v", err)
	}
	nilRing.Start(time.Second, 0)()
}

func TestLeakDetectorVerdicts(t *testing.T) {
	reg := New()
	flat := NewLeakDetector(reg, 1)
	flat.Observe(LeakSample{Goroutines: 99, HeapBytes: 1 << 30}) // warmup, discarded
	for i := 0; i < 6; i++ {
		flat.Observe(LeakSample{Goroutines: 8, HeapBytes: 64 << 20})
	}
	if r := flat.Report(); r.Leaky() || r.Insufficient || r.Usable != 6 {
		t.Fatalf("steady run misreported: %+v", r)
	}

	grow := NewLeakDetector(nil, 0)
	for i := 0; i < 8; i++ {
		grow.Observe(LeakSample{Goroutines: 8 + i, HeapBytes: uint64(64+10*i) << 20})
	}
	r := grow.Report()
	if !r.Leaky() || r.GoroutineDrift == 0 || r.HeapDriftBytes == 0 {
		t.Fatalf("ratcheting run not flagged: %+v", r)
	}

	// Drift within the heap slack is absorbed.
	slack := NewLeakDetector(nil, 0)
	for i := 0; i < 8; i++ {
		slack.Observe(LeakSample{Goroutines: 8, HeapBytes: uint64(64<<20 + i*1024)})
	}
	if r := slack.Report(); r.Leaky() {
		t.Fatalf("noise within slack flagged: %+v", r)
	}

	short := NewLeakDetector(nil, 2)
	for i := 0; i < 4; i++ {
		short.Observe(LeakSample{Goroutines: 8, HeapBytes: 1})
	}
	if r := short.Report(); !r.Insufficient {
		t.Fatalf("2 usable samples produced a verdict: %+v", r)
	}

	var nilDet *LeakDetector
	nilDet.Observe(LeakSample{})
	nilDet.Sample()
	nilDet.SampleStable()
	if r := nilDet.Report(); !r.Insufficient {
		t.Errorf("nil detector report = %+v", r)
	}

	real := NewLeakDetector(reg, 0)
	real.SampleStable()
	if r := real.Report(); r.Samples != 1 {
		t.Errorf("SampleStable recorded %d samples", r.Samples)
	}
}

func TestLifecycleReverseOrderOnce(t *testing.T) {
	l := NewLifecycle()
	var order []string
	l.Defer(func() { order = append(order, "first") })
	l.Defer(func() { order = append(order, "second") })
	l.Defer(nil) // ignored
	l.Close()
	l.Close() // once only
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("teardown order = %v, want [second first]", order)
	}

	var nilL *Lifecycle
	nilL.Defer(func() { t.Error("nil lifecycle ran a step") })
	nilL.Close()
	nilL.HandleSignals(nil)()
}

func TestLifecycleSignalPath(t *testing.T) {
	l := NewLifecycle()
	closed := false
	l.Defer(func() { closed = true })
	exited := make(chan int, 1)
	l.mu.Lock()
	l.exit = func(code int) { exited <- code }
	l.mu.Unlock()

	var buf bytes.Buffer
	log := NewLogger(&buf, "test", slog.LevelInfo)
	uninstall := l.HandleSignals(log, syscall.SIGUSR1)
	defer uninstall()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if want := 128 + int(syscall.SIGUSR1); code != want {
			t.Fatalf("exit code = %d, want %d", code, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler never ran")
	}
	if !closed {
		t.Fatal("signal path skipped Close")
	}
	recs := decodeLines(t, &buf)
	if len(recs) != 1 || recs[0]["signal"] != syscall.SIGUSR1.String() {
		t.Fatalf("shutdown log = %v", recs)
	}
}

func TestDebugServerHealthEndpoints(t *testing.T) {
	h := NewHealth()
	var ready bool
	var mu sync.Mutex
	h.Readiness("model", func() error {
		mu.Lock()
		defer mu.Unlock()
		if !ready {
			return errors.New("telemetry: model not yet trained")
		}
		return nil
	})
	srv, err := ServeDebug("127.0.0.1:0", New(), nil, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	getStatus := func(path string) (int, HealthStatus) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("GET %s Content-Type = %q", path, ct)
		}
		var st HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("GET %s body not JSON: %v", path, err)
		}
		return resp.StatusCode, st
	}

	if code, st := getStatus("/healthz"); code != http.StatusOK || !st.OK {
		t.Fatalf("/healthz = %d %+v", code, st)
	}
	if code, st := getStatus("/readyz"); code != http.StatusServiceUnavailable || st.OK || st.Components["model"] == "ok" {
		t.Fatalf("unready /readyz = %d %+v", code, st)
	}
	mu.Lock()
	ready = true
	mu.Unlock()
	if code, st := getStatus("/readyz"); code != http.StatusOK || !st.OK {
		t.Fatalf("ready /readyz = %d %+v", code, st)
	}
}

func TestDebugServerUnknownTraceJSONBody(t *testing.T) {
	tr := NewTracer(8, nil)
	srv, err := ServeDebug("127.0.0.1:0", New(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace/feedfeedfeedfeed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("404 body not JSON: %v", err)
	}
	if !strings.Contains(body.Error, "feedfeedfeedfeed") {
		t.Fatalf("404 error %q should name the trace id", body.Error)
	}
}

func TestDebugServerConcurrentAccess(t *testing.T) {
	reg := New()
	tr := NewTracer(64, reg)
	h := NewHealth()
	h.Liveness("loop", func() error { return nil })
	srv, err := ServeDebug("127.0.0.1:0", reg, tr, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	paths := []string{"/metrics", "/healthz", "/readyz", "/debug/metrics", "/debug/spans"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		// Writers mutate the registry and tracer while readers scrape.
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reg.Counter("hits_total").Inc()
				reg.Histogram("lat_seconds").Observe(0.001)
				tr.StartSpan("op", tr.NewTrace()).End()
			}
		}(i)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get("http://" + srv.Addr() + paths[(n+j)%len(paths)])
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
}
