package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every instrument kind, label
// shapes, escaping hazards and help text, with fully deterministic
// values — the fixture behind the golden exposition.
func goldenRegistry() *Registry {
	reg := New()
	reg.SetHelp("infer_total", "total hierarchical inferences")
	reg.SetHelp("net_link_bytes_total", `bytes per link; path "leaf->gw" uses \ nothing`)
	reg.SetHelp("span_seconds", "span wall time by name")
	reg.Counter("infer_total").Add(42)
	reg.Counter("net_link_bytes_total", L("link", "n1->n0"), L("medium", "wired-1g")).Add(4096)
	reg.Counter("net_link_bytes_total", L("link", "n2->n0"), L("medium", "wired-1g")).Add(8192)
	reg.Gauge("net_energy_j").Set(0.125)
	reg.Gauge("pool_queue_depth", L("stage", "encode")).Set(3)
	reg.Gauge("weird_label", L("v", "a\\b\"c\nd")).Set(1)
	h := reg.Histogram("span_seconds", L("span", "infer"))
	for _, v := range []float64{0.0001, 0.0005, 0.002, 0.002, 0.75} {
		h.Observe(v)
	}
	return reg
}

func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestOpenMetricsStableAcrossRenders(t *testing.T) {
	reg := goldenRegistry()
	var a, b bytes.Buffer
	if err := reg.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestOpenMetricsHistogramCumulativity(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Terminated {
		t.Fatal("exposition missing # EOF terminator")
	}
	span := L("span", "infer")
	prev := -1.0
	for _, bound := range ExportBounds() {
		v, ok := exp.Value("span_seconds_bucket", span, L("le", formatValue(bound)))
		if !ok {
			t.Fatalf("missing bucket le=%v", bound)
		}
		if v < prev {
			t.Fatalf("bucket le=%v value %v below previous %v — not cumulative", bound, v, prev)
		}
		prev = v
	}
	inf, ok := exp.Value("span_seconds_bucket", span, L("le", "+Inf"))
	if !ok {
		t.Fatal("missing +Inf bucket")
	}
	count, _ := exp.Value("span_seconds_count", span)
	if inf != count || count != 5 {
		t.Fatalf("+Inf bucket %v != count %v (want 5)", inf, count)
	}
	sum, _ := exp.Value("span_seconds_sum", span)
	if math.Abs(sum-0.7546) > 1e-9 {
		t.Fatalf("sum = %v, want 0.7546", sum)
	}
}

func TestOpenMetricsRoundTrip(t *testing.T) {
	// Every scalar value written must parse back identically, and the
	// parsed families must carry the declared types and help text.
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for key, v := range snap.Counters {
		// Fixture counters are registered with the _total suffix, so the
		// snapshot key and the exposition sample key coincide.
		got, ok := exp.Samples[key]
		if !ok || got != float64(v) {
			t.Fatalf("counter %s: parsed %v (present %v), want %d", key, got, ok, v)
		}
	}
	for key, v := range snap.Gauges {
		got, ok := exp.Samples[key]
		if !ok || got != v {
			t.Fatalf("gauge %s: parsed %v (present %v), want %v", key, got, ok, v)
		}
	}
	// OpenMetrics counter families drop the _total suffix: the family is
	// "infer", its sample "infer_total".
	fam, ok := exp.Families["infer"]
	if !ok || fam.Type != "counter" || fam.Help != "total hierarchical inferences" {
		t.Fatalf("infer family parsed wrong: %+v", fam)
	}
	if fam := exp.Families["span_seconds"]; fam == nil || fam.Type != "histogram" {
		t.Fatalf("span_seconds family parsed wrong: %+v", fam)
	}
	// The escaped label value survives the round trip.
	if v, ok := exp.Value("weird_label", L("v", "a\\b\"c\nd")); !ok || v != 1 {
		t.Fatalf("escaped label lost in round trip (present %v, v=%v)", ok, v)
	}
	hf := exp.Families["net_link_bytes"]
	if hf == nil || hf.Help != `bytes per link; path "leaf->gw" uses \ nothing` {
		t.Fatalf("escaped help lost: %+v", hf)
	}
}

func TestOpenMetricsNilRegistry(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("nil registry exposition = %q", buf.String())
	}
	exp, err := ParseOpenMetrics(&buf)
	if err != nil || !exp.Terminated {
		t.Fatalf("empty exposition must parse terminated, got %v %v", exp, err)
	}
}

func TestOpenMetricsExemplarRoundTrip(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat_seconds", L("op", "infer"))
	h.Observe(0.001)
	h.ObserveExemplar(0.002, 0xabcdef01)
	h.ObserveExemplar(0.8, 0xfeed)
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# {trace_id="00000000abcdef01"} 0.002`) {
		t.Fatalf("exposition missing exemplar suffix:\n%s", buf.String())
	}
	exp, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Families["lat_seconds"]
	if fam == nil {
		t.Fatal("histogram family missing")
	}
	found := map[uint64]float64{}
	for _, s := range fam.Samples {
		if s.Exemplar != nil {
			found[s.Exemplar.TraceID()] = s.Exemplar.Value
		}
	}
	if v, ok := found[0xabcdef01]; !ok || v != 0.002 {
		t.Fatalf("exemplar 0xabcdef01 parsed as %v (present %v)", v, ok)
	}
	if v, ok := found[0xfeed]; !ok || v != 0.8 {
		t.Fatalf("exemplar 0xfeed parsed as %v (present %v)", v, ok)
	}
	// Non-exemplared buckets stay bare; the exemplar does not perturb
	// the sample values themselves.
	if c, ok := exp.Value("lat_seconds_count", L("op", "infer")); !ok || c != 3 {
		t.Fatalf("count with exemplars = %v ok=%v", c, ok)
	}
	var nilEx *ExpositionExemplar
	if nilEx.TraceID() != 0 {
		t.Fatal("nil exemplar TraceID must be 0")
	}
	if (&ExpositionExemplar{Labels: []Label{{Key: "trace_id", Value: "xyz"}}}).TraceID() != 0 {
		t.Fatal("malformed trace_id must parse to 0")
	}
}

func TestParseOpenMetricsLabeledFamiliesEscapedValues(t *testing.T) {
	// Labeled samples whose label values need every escape form must
	// survive write→parse with the family structure intact.
	reg := New()
	reg.SetHelp("route_msgs_total", "messages per route")
	hazards := []string{"plain", `back\slash`, "quo\"te", "new\nline", `all\"three` + "\n."}
	for i, hz := range hazards {
		reg.Counter("route_msgs_total", L("route", hz), L("hop", "gw")).Add(int64(i + 1))
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseOpenMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Families["route_msgs"]
	if fam == nil || fam.Type != "counter" || len(fam.Samples) != len(hazards) {
		t.Fatalf("route_msgs family = %+v", fam)
	}
	for i, hz := range hazards {
		v, ok := exp.Value("route_msgs_total", L("route", hz), L("hop", "gw"))
		if !ok || v != float64(i+1) {
			t.Fatalf("route %q parsed %v (present %v), want %d", hz, v, ok, i+1)
		}
	}
	for _, s := range fam.Samples {
		if len(s.Labels) != 2 {
			t.Fatalf("sample labels collapsed: %+v", s)
		}
	}
}

func TestParseOpenMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"metric{unterminated 1\n",
		`metric{l="dangling\` + "\n",
		"metric notanumber\n",
	} {
		if _, err := ParseOpenMetrics(strings.NewReader(bad)); err == nil {
			t.Fatalf("garbage accepted: %q", bad)
		}
	}
}
