package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	// None of these may panic, and all reads must be zero.
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(2)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if st := h.Stat(); st.Count != 0 {
		t.Fatalf("nil histogram stat must be zero, got %+v", st)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests", L("path", "/infer"))
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	// Same name+labels resolves to the same instrument regardless of
	// label order.
	c2 := r.Counter("requests", L("path", "/infer"))
	if c2 != c {
		t.Fatalf("same key must return the same counter")
	}
	g := r.Gauge("energy_j")
	g.Set(1.5)
	g.Add(0.25)
	if got := g.Value(); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("gauge = %v, want 1.75", got)
	}
}

func TestCanonicalNameSortsLabels(t *testing.T) {
	a := canonicalName("m", []Label{L("b", "2"), L("a", "1")})
	b := canonicalName("m", []Label{L("a", "1"), L("b", "2")})
	want := `m{a="1",b="2"}`
	if a != want || b != want {
		t.Fatalf("canonicalName = %q / %q, want %q", a, b, want)
	}
	if got := canonicalName("bare", nil); got != "bare" {
		t.Fatalf("unlabeled name = %q, want bare", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("latency")
	// 1..1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990 within bucket error
	// (±7.5%).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q, want float64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want)/c.want > 0.08 {
			t.Errorf("p%v = %v, want ≈%v", 100*c.q, got, c.want)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q=0 should be min, got %v", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q=1 should be max, got %v", got)
	}
	st := h.Stat()
	if st.Count != 1000 || st.Min != 1 || st.Max != 1000 {
		t.Errorf("stat = %+v", st)
	}
	if math.Abs(st.Mean-500.5) > 1e-9 {
		t.Errorf("mean = %v, want 500.5", st.Mean)
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := New()
	h := r.Histogram("x")
	h.Observe(0)    // below histMin → bucket 0
	h.Observe(-3)   // negative clamps, must not panic
	h.Observe(1e20) // beyond top bucket clamps
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(1); got != 1e20 {
		t.Fatalf("max = %v", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", L("w", fmt.Sprint(w%2))).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	snap := r.Snapshot()
	if snap.Histograms[`h{w="0"}`].Count+snap.Histograms[`h{w="1"}`].Count != 8000 {
		t.Fatalf("histogram counts = %+v", snap.Histograms)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	r := New()
	r.Counter("bytes").Add(1234)
	r.Gauge("joules").Set(0.5)
	r.Histogram("lat").Observe(0.01)
	tr := NewTracer(4, r)
	sp := tr.Start("op")
	sp.SetInt("n", 7)
	sp.End()

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteSnapshotFile(path, r, tr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got FileSnapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if got.Metrics.Counters["bytes"] != 1234 {
		t.Errorf("counters = %+v", got.Metrics.Counters)
	}
	if got.Metrics.Gauges["joules"] != 0.5 {
		t.Errorf("gauges = %+v", got.Metrics.Gauges)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "op" || got.TotalSpans != 1 {
		t.Errorf("spans = %+v total=%d", got.Spans, got.TotalSpans)
	}
	// The tracer fed the registry a span_seconds histogram.
	if got.Metrics.Histograms[`span_seconds{span="op"}`].Count != 1 {
		t.Errorf("span_seconds missing: %+v", got.Metrics.Histograms)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits").Add(2)
	tr := NewTracer(8, nil)
	tr.Start("ping").End()
	srv, err := ServeDebug("127.0.0.1:0", r, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return buf[:n]
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v", err)
	}
	if snap.Counters["hits"] != 2 {
		t.Errorf("metrics = %+v", snap)
	}
	var spans struct {
		Total int64  `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(get("/debug/spans"), &spans); err != nil {
		t.Fatalf("/debug/spans not JSON: %v", err)
	}
	if spans.Total != 1 || len(spans.Spans) != 1 {
		t.Errorf("spans = %+v", spans)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof cmdline empty")
	}
	if body := get("/"); len(body) == 0 {
		t.Error("index empty")
	}
}

func TestDebugServerMetricsAndTraceEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits_total").Add(7)
	tr := NewTracer(8, r)
	root := tr.NewTrace()
	tr.StartSpan("hop", root.Child()).SetInt("wire_bytes", 512).End()
	tr.StartSpan("infer", root).End()
	srv, err := ServeDebug("127.0.0.1:0", r, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeOpenMetrics {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	exp, err := ParseOpenMetrics(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not parseable OpenMetrics: %v", err)
	}
	if v, ok := exp.Value("hits_total"); !ok || v != 7 {
		t.Fatalf("hits_total = %v (present %v)", v, ok)
	}
	if !exp.Terminated {
		t.Fatal("/metrics missing # EOF")
	}

	treeResp, err := http.Get(fmt.Sprintf("http://%s/debug/trace/%016x", srv.Addr(), root.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	defer treeResp.Body.Close()
	if treeResp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", treeResp.StatusCode)
	}
	var tree struct {
		TraceID string       `json:"trace_id"`
		Spans   []*TraceNode `json:"spans"`
	}
	if err := json.NewDecoder(treeResp.Body).Decode(&tree); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "infer" || len(tree.Spans[0].Children) != 1 {
		t.Fatalf("trace tree = %+v", tree.Spans)
	}
	if tree.Spans[0].Children[0].Name != "hop" {
		t.Fatalf("child span = %+v", tree.Spans[0].Children[0])
	}

	// Unknown trace → 404; malformed id → 400.
	if resp, err := http.Get("http://" + srv.Addr() + "/debug/trace/feedfeedfeedfeed"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get("http://" + srv.Addr() + "/debug/trace/not-an-id"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed trace id: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}
