package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Collector periodically samples the Go runtime (via runtime/metrics)
// into a Registry, so the /metrics exposition carries process health —
// heap size, GC pauses, goroutine count, scheduler latency, CPU time,
// uptime — alongside the application's own series. A nil *Collector is
// a valid "collection disabled" collector: every method no-ops.
//
// All runtime series are gauges holding the most recent sample: the
// collector reads absolute values from the runtime, so re-sampling is
// idempotent and a scrape between two collections simply sees the last
// sample.
type Collector struct {
	reg     *Registry
	start   time.Time
	samples []metrics.Sample

	// hookMu guards hooks; Collect itself runs in a single goroutine
	// (Start's loop) but hooks may be registered from others.
	hookMu sync.Mutex
	hooks  []func()
}

// The runtime/metrics names the collector samples, paired with the
// registry series they feed.
const (
	rmHeapBytes    = "/memory/classes/heap/objects:bytes"
	rmTotalBytes   = "/memory/classes/total:bytes"
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGCPauses     = "/gc/pauses:seconds"
	rmSchedLatency = "/sched/latencies:seconds"
	rmCPUTotalSecs = "/cpu/classes/total:cpu-seconds"
	rmCPUUserSecs  = "/cpu/classes/user:cpu-seconds"
	rmCPUGCSecs    = "/cpu/classes/gc/total:cpu-seconds"
	rmAllocBytes   = "/gc/heap/allocs:bytes"
)

// NewCollector returns a collector feeding reg. The process start time
// (for runtime_uptime_seconds) is captured here, so construct the
// collector early. Returns nil on a nil registry — collection stays
// disabled end to end.
func NewCollector(reg *Registry) *Collector {
	if reg == nil {
		return nil
	}
	names := []string{
		rmHeapBytes, rmTotalBytes, rmGoroutines, rmGCCycles,
		rmGCPauses, rmSchedLatency, rmCPUTotalSecs, rmCPUUserSecs,
		rmCPUGCSecs, rmAllocBytes,
	}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	reg.SetHelp("runtime_heap_bytes", "bytes of live heap objects (runtime/metrics "+rmHeapBytes+")")
	reg.SetHelp("runtime_mem_bytes", "total bytes of memory mapped by the Go runtime")
	reg.SetHelp("runtime_alloc_bytes", "cumulative bytes allocated on the heap")
	reg.SetHelp("runtime_goroutines", "live goroutine count")
	reg.SetHelp("runtime_gc_cycles", "completed GC cycles since process start")
	reg.SetHelp("runtime_gc_pause_seconds", "stop-the-world GC pause quantiles since process start")
	reg.SetHelp("runtime_sched_latency_seconds", "goroutine scheduling latency quantiles since process start")
	reg.SetHelp("runtime_cpu_seconds", "estimated CPU time by usage class since process start")
	reg.SetHelp("runtime_uptime_seconds", "seconds since the collector was constructed")
	reg.SetHelp("runtime_gomaxprocs", "current GOMAXPROCS setting")
	return &Collector{reg: reg, start: time.Now(), samples: samples}
}

// Collect performs one sampling pass. Safe on a nil receiver and for
// concurrent use (the underlying instruments are concurrency-safe; the
// sample buffer is only touched by the caller's goroutine — callers
// running Collect concurrently should each own a Collector or use
// Start's single background goroutine).
func (c *Collector) Collect() {
	if c == nil {
		return
	}
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmHeapBytes:
			c.setGauge("runtime_heap_bytes", sampleFloat(s))
		case rmTotalBytes:
			c.setGauge("runtime_mem_bytes", sampleFloat(s))
		case rmAllocBytes:
			c.setGauge("runtime_alloc_bytes", sampleFloat(s))
		case rmGoroutines:
			c.setGauge("runtime_goroutines", sampleFloat(s))
		case rmGCCycles:
			c.setGauge("runtime_gc_cycles", sampleFloat(s))
		case rmGCPauses:
			c.setQuantiles("runtime_gc_pause_seconds", s)
		case rmSchedLatency:
			c.setQuantiles("runtime_sched_latency_seconds", s)
		case rmCPUTotalSecs:
			c.setGaugeL("runtime_cpu_seconds", L("class", "total"), sampleFloat(s))
		case rmCPUUserSecs:
			c.setGaugeL("runtime_cpu_seconds", L("class", "user"), sampleFloat(s))
		case rmCPUGCSecs:
			c.setGaugeL("runtime_cpu_seconds", L("class", "gc"), sampleFloat(s))
		}
	}
	c.setGauge("runtime_uptime_seconds", time.Since(c.start).Seconds())
	c.setGauge("runtime_gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	c.hookMu.Lock()
	hooks := c.hooks
	c.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// OnCollect registers a hook run at the end of every Collect pass, on
// the collection cadence. The health plane rides on this: heartbeats
// beat here (a wedged collection loop goes stale and fails /healthz),
// SLO trackers recompute their gauges here, and leak detectors can
// sample here. No-op on a nil collector or nil hook.
func (c *Collector) OnCollect(fn func()) {
	if c == nil || fn == nil {
		return
	}
	c.hookMu.Lock()
	c.hooks = append(c.hooks, fn)
	c.hookMu.Unlock()
}

// Start launches a background goroutine collecting every interval
// (minimum 100ms) and returns a stop function. On a nil receiver it
// returns a no-op stop.
func (c *Collector) Start(interval time.Duration) func() {
	if c == nil {
		return noopStop
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	c.Collect() // one synchronous pass so scrapes see data immediately
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
	return func() { close(done) }
}

// setGauge writes one unlabeled runtime gauge.
func (c *Collector) setGauge(name string, v float64) {
	if c == nil {
		return
	}
	c.reg.Gauge(name).Set(v)
}

// setGaugeL writes one labeled runtime gauge.
func (c *Collector) setGaugeL(name string, l Label, v float64) {
	if c == nil {
		return
	}
	c.reg.Gauge(name, l).Set(v)
}

// setQuantiles summarizes a runtime histogram sample into p50/p99
// gauges plus an event-count gauge.
func (c *Collector) setQuantiles(name string, s *metrics.Sample) {
	if c == nil {
		return
	}
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return
	}
	total := int64(0)
	for _, n := range h.Counts {
		total += int64(n)
	}
	c.reg.Gauge(name, L("q", "p50")).Set(runtimeHistQuantile(h, 0.50))
	c.reg.Gauge(name, L("q", "p99")).Set(runtimeHistQuantile(h, 0.99))
	c.reg.Gauge(name + "_events").Set(float64(total))
}

// sampleFloat converts a runtime/metrics sample value to float64 (0 for
// kinds the local runtime does not support).
func sampleFloat(s *metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// runtimeHistQuantile estimates the q-quantile of a runtime/metrics
// histogram: the upper edge of the bucket containing the rank, with
// infinite edges clamped to the nearest finite neighbor.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if cum >= rank {
			// Bucket i spans h.Buckets[i] to h.Buckets[i+1].
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 1) {
				edge = h.Buckets[i]
			}
			if math.IsInf(edge, -1) {
				edge = 0
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
