// Package telemetry is the stdlib-only observability substrate of the
// EdgeHD reproduction: a concurrency-safe metrics registry (counters,
// gauges, streaming histograms with p50/p95/p99), span-style tracing
// for the hot paths (encode, associative search, confidence-routed
// inference, hierarchical training, residual propagation), and helpers
// that expose both over HTTP (expvar + pprof) or as JSON snapshots.
//
// Everything is built around the nil-receiver no-op pattern: a nil
// *Registry hands out nil instruments, and every method on a nil
// instrument (or nil *Tracer / nil *SpanHandle) is a cheap no-op. Code
// can therefore be instrumented unconditionally — when no registry is
// attached the added cost is a nil check per event, which keeps the
// disabled hot path within noise of the uninstrumented one.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" dimension of a metric name.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// canonicalName renders name plus sorted labels as
// name{k1="v1",k2="v2"}, the registry's map key and the name reported
// in snapshots.
func canonicalName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// metricKey is the structured identity behind a canonical map key: the
// bare metric name plus its sorted labels. The OpenMetrics exporter
// needs the parts separately (family name, label rendering with
// escaping), so the registry records them at instrument creation
// instead of re-parsing canonical strings.
type metricKey struct {
	name   string
	labels []Label
}

// Registry holds named metrics. The zero value is not usable; construct
// with New. A nil *Registry is a valid "telemetry disabled" registry:
// every lookup returns a nil instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]metricKey
	help     map[string]string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]metricKey),
		help:     make(map[string]string),
	}
}

// SetHelp attaches a one-line description to a metric name (the bare
// name, without labels). The OpenMetrics exporter renders it as the
// family's # HELP line. No-op on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// recordMeta remembers the structured identity of a canonical key.
// Caller holds r.mu.
func (r *Registry) recordMeta(key, name string, labels []Label) {
	if _, ok := r.meta[key]; ok {
		return
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.meta[key] = metricKey{name: name, labels: ls}
}

// Counter returns (creating on first use) the counter with the given
// name and labels. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := canonicalName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.recordMeta(key, name, labels)
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name
// and labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := canonicalName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.recordMeta(key, name, labels)
	}
	return g
}

// Histogram returns (creating on first use) the streaming histogram
// with the given name and labels. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := canonicalName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = newHistogram()
		r.hists[key] = h
		r.recordMeta(key, name, labels)
	}
	return h
}

// Counter is a monotonically increasing int64 metric. All methods are
// safe on a nil receiver and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions (e.g.
// accumulated joules, current queue depth). All methods are safe on a
// nil receiver and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add accumulates delta into the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}
