package telemetry

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Lifecycle collects a process's teardown steps — stop the runtime
// collector, flush the final metrics snapshot, close the debug server
// — and runs them exactly once in reverse registration order, both on
// the normal exit path (defer life.Close()) and when a shutdown signal
// arrives (HandleSignals), so a SIGTERM mid-round leaves the same
// complete snapshot behind as a clean exit instead of dying mid-write.
//
// A nil *Lifecycle is a valid "no managed shutdown" lifecycle: every
// method no-ops.
type Lifecycle struct {
	mu     sync.Mutex
	fns    []func()
	closed bool
	// exit is os.Exit, injectable for tests.
	exit func(int)
}

// NewLifecycle returns an empty lifecycle.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{exit: os.Exit}
}

// Defer registers a teardown step. Steps run in reverse registration
// order (like defer), so later-constructed resources close first.
func (l *Lifecycle) Defer(fn func()) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	l.fns = append(l.fns, fn)
	l.mu.Unlock()
}

// Close runs every registered step once, newest first. Subsequent
// calls no-op, so the signal path and the deferred normal-exit path
// cannot double-close resources.
func (l *Lifecycle) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	fns := l.fns
	l.fns = nil
	l.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// signalExitCode follows the shell convention: 128 plus the signal
// number (130 for SIGINT, 143 for SIGTERM).
func signalExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}

// HandleSignals installs a handler that, on the first matching signal
// (default SIGINT and SIGTERM), logs the shutdown, runs Close, and
// exits with the conventional 128+signum status. It returns a function
// that uninstalls the handler (for callers that reach their normal
// exit path first).
func (l *Lifecycle) HandleSignals(log *Logger, sigs ...os.Signal) func() {
	if l == nil {
		return noopStop
	}
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	quit := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			log.Warn("shutdown signal received", "signal", sig.String())
			l.Close()
			l.mu.Lock()
			exit := l.exit
			l.mu.Unlock()
			exit(signalExitCode(sig))
		case <-quit:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(quit)
	}
}
