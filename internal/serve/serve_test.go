package serve

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"edgehd/internal/core"
	"edgehd/internal/hdc"
	"edgehd/internal/parallel"
	"edgehd/internal/rng"
	"edgehd/internal/telemetry"
	"edgehd/internal/wire"
)

const testDim = 512

// testModel builds a small trained model: ten random bundled
// hypervectors per class from a fixed seed stream.
func testModel(t *testing.T, seed uint64, classes int) *core.Model {
	t.Helper()
	m, err := core.NewModel(testDim, classes)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for c := 0; c < classes; c++ {
		for j := 0; j < 10; j++ {
			m.Add(c, hdc.RandomBipolar(testDim, r))
		}
	}
	return m
}

// testQueries derives n random query hypervectors from a fixed seed.
func testQueries(n int) []hdc.Bipolar {
	r := rng.New(4242)
	qs := make([]hdc.Bipolar, n)
	for i := range qs {
		qs[i] = hdc.RandomBipolar(testDim, r)
	}
	return qs
}

// startServer boots a server on a loopback listener and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

// dialServe opens a client connection and completes the handshake.
func dialServe(t *testing.T, addr, tenant string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	if err := wire.Write(nc, wire.Message{Header: wire.Header{Type: wire.MsgHello}, Text: tenant}); err != nil {
		t.Fatal(err)
	}
	return nc
}

// reply is one decoded server response.
type reply struct {
	busy  bool
	class int32
	conf  float64
}

// pipeline sends every query (seq = index) and then reads one reply per
// query, returning them indexed by echoed sequence number.
func pipeline(t *testing.T, nc net.Conn, queries []hdc.Bipolar) map[int32]reply {
	t.Helper()
	for i, q := range queries {
		msg := wire.Message{Header: wire.Header{Type: wire.MsgQuery, Batch: int32(i)}, Bipolar: q}
		if err := wire.Write(nc, msg); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	out := make(map[int32]reply, len(queries))
	for range queries {
		msg, err := wire.Read(nc)
		if err != nil {
			t.Fatalf("after %d replies: %v", len(out), err)
		}
		switch msg.Header.Type {
		case wire.MsgPredict:
			out[msg.Header.Batch] = reply{class: msg.Header.Class, conf: msg.Confidence}
		case wire.MsgBusy:
			out[msg.Header.Batch] = reply{busy: true}
		default:
			t.Fatalf("unexpected reply type %d (text %q)", msg.Header.Type, msg.Text)
		}
	}
	return out
}

func TestBatchedMatchesSequential(t *testing.T) {
	// The tentpole determinism contract: coalescing queries into pooled
	// batches must not change a single bit of any answer. Every reply is
	// compared against the direct sequential Model.Confidence call, at
	// worker counts 1 and 8.
	model := testModel(t, 7, 5)
	queries := testQueries(200)
	type expected struct {
		class int32
		bits  uint64
	}
	want := make([]expected, len(queries))
	for i, q := range queries {
		class, conf := model.Confidence(q)
		want[i] = expected{class: int32(class), bits: math.Float64bits(conf)}
	}
	for _, workers := range []int{1, 8} {
		reg := NewRegistry()
		if err := reg.Set("default", model); err != nil {
			t.Fatal(err)
		}
		srv, addr := startServer(t, Config{
			Registry: reg, Pool: parallel.New(workers), MaxBatch: 32, QueueDepth: 4096,
		})
		nc := dialServe(t, addr, "default")
		got := pipeline(t, nc, queries)
		if len(got) != len(queries) {
			t.Fatalf("workers=%d: %d replies for %d queries", workers, len(got), len(queries))
		}
		for i := range queries {
			r, ok := got[int32(i)]
			if !ok {
				t.Fatalf("workers=%d: no reply for seq %d", workers, i)
			}
			if r.busy {
				t.Fatalf("workers=%d: seq %d rejected despite deep queue", workers, i)
			}
			if r.class != want[i].class || math.Float64bits(r.conf) != want[i].bits {
				t.Fatalf("workers=%d seq %d: got class %d conf %x, want class %d conf %x",
					workers, i, r.class, math.Float64bits(r.conf), want[i].class, want[i].bits)
			}
		}
		if st := srv.Stats(); st.Admitted != uint64(len(queries)) || st.Replied != uint64(len(queries)) {
			t.Fatalf("workers=%d: stats %+v want %d admitted and replied", workers, st, len(queries))
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDrainUnderLoad(t *testing.T) {
	// Close must answer every admitted query before cutting connections:
	// fire queries from several connections, drain the moment everything
	// was admitted or shed, and account for every single query.
	model := testModel(t, 11, 3)
	reg := NewRegistry()
	if err := reg.Set("default", model); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Config{
		Registry: reg, Pool: parallel.New(4), MaxBatch: 16, QueueDepth: 64,
		BatchWindow: 500 * time.Microsecond,
	})
	const conns, perConn = 4, 100
	queries := testQueries(perConn)
	var wg sync.WaitGroup
	results := make([]map[int32]reply, conns)
	for ci := 0; ci < conns; ci++ {
		nc := dialServe(t, addr, "default")
		wg.Add(1)
		go func(ci int, nc net.Conn) {
			defer wg.Done()
			results[ci] = pipeline(t, nc, queries)
		}(ci, nc)
	}
	// Drain as soon as every query has passed admission (admitted or
	// rejected) — concurrent with the clients still reading replies.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Admitted+st.Rejected >= conns*perConn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never completed: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Replied != st.Admitted {
		t.Fatalf("drain dropped queries: admitted %d, replied %d", st.Admitted, st.Replied)
	}
	var predicts, busys uint64
	for ci := 0; ci < conns; ci++ {
		for i := 0; i < perConn; i++ {
			r, ok := results[ci][int32(i)]
			if !ok {
				t.Fatalf("conn %d seq %d: no reply", ci, i)
			}
			if r.busy {
				busys++
			} else {
				predicts++
			}
		}
	}
	if predicts != st.Admitted || busys != st.Rejected {
		t.Fatalf("client saw %d predicts / %d busys, server reports %d admitted / %d rejected",
			predicts, busys, st.Admitted, st.Rejected)
	}
}

func TestRegistrySwapDuringQueries(t *testing.T) {
	// A retrain swap (copy-on-write Set) races live queries under -race;
	// every reply must be exactly consistent with one of the two
	// published models — never a blend.
	modelA := testModel(t, 7, 4)
	modelB := testModel(t, 1001, 4)
	queries := testQueries(300)
	type expected struct {
		class int32
		bits  uint64
	}
	wantA := make([]expected, len(queries))
	wantB := make([]expected, len(queries))
	for i, q := range queries {
		ca, fa := modelA.Confidence(q)
		cb, fb := modelB.Confidence(q)
		wantA[i] = expected{int32(ca), math.Float64bits(fa)}
		wantB[i] = expected{int32(cb), math.Float64bits(fb)}
	}
	reg := NewRegistry()
	if err := reg.Set("default", modelA); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Registry: reg, Pool: parallel.New(4), MaxBatch: 8, QueueDepth: 1024})
	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			m := modelA
			if i%2 == 0 {
				m = modelB
			}
			if err := reg.Set("default", m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	nc := dialServe(t, addr, "default")
	got := pipeline(t, nc, queries)
	close(stopSwap)
	swapWG.Wait()
	for i := range queries {
		r, ok := got[int32(i)]
		if !ok {
			t.Fatalf("seq %d: no reply", i)
		}
		if r.busy {
			continue // shed is fine; blended answers are not
		}
		bits := math.Float64bits(r.conf)
		matchA := r.class == wantA[i].class && bits == wantA[i].bits
		matchB := r.class == wantB[i].class && bits == wantB[i].bits
		if !matchA && !matchB {
			t.Fatalf("seq %d: reply (class %d, conf %x) matches neither model", i, r.class, bits)
		}
	}
}

// blockingModel parks Confidence until released, to hold the dispatcher
// mid-batch deterministically.
type blockingModel struct {
	started chan struct{}
	release chan struct{}
}

func (m *blockingModel) Dim() int     { return testDim }
func (m *blockingModel) Classes() int { return 2 }
func (m *blockingModel) Confidence(hdc.Bipolar) (int, float64) {
	m.started <- struct{}{}
	<-m.release
	return 0, 1
}

func TestQueueFullRejectsWithBusy(t *testing.T) {
	// With the dispatcher wedged in a batch and the queue full, the next
	// query must be shed immediately with MsgBusy, not block the handler.
	bm := &blockingModel{started: make(chan struct{}, 8), release: make(chan struct{})}
	reg := NewRegistry()
	if err := reg.Set("default", bm); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Config{Registry: reg, MaxBatch: 1, QueueDepth: 1})
	nc := dialServe(t, addr, "default")
	q := testQueries(1)[0]
	send := func(seq int32) {
		if err := wire.Write(nc, wire.Message{Header: wire.Header{Type: wire.MsgQuery, Batch: seq}, Bipolar: q}); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	<-bm.started // dispatcher is inside the seq-1 batch
	send(2)      // fills the queue
	send(3)      // must bounce
	msg, err := wire.Read(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.Type != wire.MsgBusy || msg.Header.Batch != 3 {
		t.Fatalf("expected MsgBusy for seq 3, got type %d seq %d", msg.Header.Type, msg.Header.Batch)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}
	close(bm.release)
	for _, wantSeq := range []int32{1, 2} {
		msg, err := wire.Read(nc)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Header.Type != wire.MsgPredict || msg.Header.Batch != wantSeq {
			t.Fatalf("expected MsgPredict seq %d, got type %d seq %d", wantSeq, msg.Header.Type, msg.Header.Batch)
		}
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Set("default", testModel(t, 7, 2)); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Registry: reg})
	nc := dialServe(t, addr, "nobody")
	msg, err := wire.Read(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.Type != wire.MsgError || !strings.Contains(msg.Text, "unknown tenant") {
		t.Fatalf("expected unknown-tenant MsgError, got type %d text %q", msg.Header.Type, msg.Text)
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Set("default", testModel(t, 7, 2)); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Registry: reg})
	nc := dialServe(t, addr, "default")
	bad := hdc.RandomBipolar(testDim/2, rng.New(1))
	if err := wire.Write(nc, wire.Message{Header: wire.Header{Type: wire.MsgQuery, Batch: 1}, Bipolar: bad}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Read(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.Type != wire.MsgError || !strings.Contains(msg.Text, "dim") {
		t.Fatalf("expected dim-mismatch MsgError, got type %d text %q", msg.Header.Type, msg.Text)
	}
}

func TestReadyAndIdempotentClose(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Set("default", testModel(t, 7, 2)); err != nil {
		t.Fatal(err)
	}
	srv, _ := startServer(t, Config{Registry: reg})
	if err := srv.Ready(); err != nil {
		t.Fatalf("server not ready while serving: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ready(); err == nil {
		t.Fatal("server ready after Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeTelemetryPlane(t *testing.T) {
	// The full observability surface of the serving path: per-tenant
	// query counters, the admission queue-depth gauge, serve_query root
	// spans, and latency observations carrying trace-linked exemplars.
	model := testModel(t, 7, 3)
	reg := NewRegistry()
	for _, tenant := range []string{"alpha", "beta"} {
		if err := reg.Set(tenant, model); err != nil {
			t.Fatal(err)
		}
	}
	treg := telemetry.New()
	tracer := telemetry.NewTracer(256, treg)
	smp := telemetry.NewSampler(treg, telemetry.SamplerConfig{})
	tracer.SetSampler(smp)
	srv, addr := startServer(t, Config{
		Registry: reg, Pool: parallel.New(2), MaxBatch: 8, QueueDepth: 256,
		Telemetry: treg, Tracer: tracer,
	})
	qa, qb := testQueries(20), testQueries(5)
	ra := pipeline(t, dialServe(t, addr, "alpha"), qa)
	rb := pipeline(t, dialServe(t, addr, "beta"), qb)
	if len(ra) != len(qa) || len(rb) != len(qb) {
		t.Fatalf("replies %d/%d, want %d/%d", len(ra), len(rb), len(qa), len(qb))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if v := treg.Counter("serve_tenant_queries_total", telemetry.L("tenant", "alpha")).Value(); v != int64(len(qa)) {
		t.Fatalf("alpha tenant counter = %d, want %d", v, len(qa))
	}
	if v := treg.Counter("serve_tenant_queries_total", telemetry.L("tenant", "beta")).Value(); v != int64(len(qb)) {
		t.Fatalf("beta tenant counter = %d, want %d", v, len(qb))
	}
	if d := treg.Gauge("serve_queue_depth").Value(); d != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", d)
	}
	// Every admitted query ended a serve_query root span.
	spanHist := treg.Histogram("span_seconds", telemetry.L("span", "serve_query"))
	if got := spanHist.Count(); got != int64(len(qa)+len(qb)) {
		t.Fatalf("serve_query spans = %d, want %d", got, len(qa)+len(qb))
	}
	last := tracer.Last("serve_query")
	if last == nil || last.TraceID == 0 || last.ParentID != 0 {
		t.Fatalf("serve_query span not a traced root: %+v", last)
	}
	if tn, ok := last.Attr("tenant").(string); !ok || (tn != "alpha" && tn != "beta") {
		t.Fatalf("serve_query tenant attr = %v", last.Attr("tenant"))
	}
	if _, ok := last.Int64Attr("batch_size"); !ok {
		t.Fatalf("serve_query missing batch_size attr: %+v", last.Attrs)
	}
	// The latency histogram carries exemplars linking buckets to traces.
	lat := treg.Histogram("serve_latency_seconds")
	if lat.Count() != int64(len(qa)+len(qb)) {
		t.Fatalf("latency observations = %d", lat.Count())
	}
	found := false
	for _, ex := range lat.Exemplars(telemetry.ExportBounds()) {
		if ex.Valid && ex.TraceID != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("serve latency carries no trace exemplar")
	}
}

func TestServeShedKeepsTraceAndCounts(t *testing.T) {
	// A query shed with MsgBusy must surface everywhere at once: the
	// reject counter, a serve_shed root span, and a sampler keep with
	// reason "shed".
	bm := &blockingModel{started: make(chan struct{}, 8), release: make(chan struct{})}
	reg := NewRegistry()
	if err := reg.Set("default", bm); err != nil {
		t.Fatal(err)
	}
	treg := telemetry.New()
	tracer := telemetry.NewTracer(64, treg)
	smp := telemetry.NewSampler(treg, telemetry.SamplerConfig{})
	tracer.SetSampler(smp)
	_, addr := startServer(t, Config{
		Registry: reg, MaxBatch: 1, QueueDepth: 1, Telemetry: treg, Tracer: tracer,
	})
	nc := dialServe(t, addr, "default")
	q := testQueries(1)[0]
	send := func(seq int32) {
		if err := wire.Write(nc, wire.Message{Header: wire.Header{Type: wire.MsgQuery, Batch: seq}, Bipolar: q}); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	<-bm.started
	send(2)
	send(3) // queue full: shed
	msg, err := wire.Read(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.Type != wire.MsgBusy {
		t.Fatalf("expected MsgBusy, got type %d", msg.Header.Type)
	}
	if v := treg.Counter("serve_rejects_total").Value(); v != 1 {
		t.Fatalf("rejects counter = %d, want 1", v)
	}
	kept := smp.Kept()
	if len(kept) != 1 || kept[0].Reason != telemetry.KeepShed || kept[0].Root != "serve_shed" {
		t.Fatalf("sampler keeps = %+v, want one serve_shed with reason shed", kept)
	}
	close(bm.release)
}

func TestRegistryCopyOnWrite(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Get("a"); ok {
		t.Fatal("empty registry resolved a tenant")
	}
	ma, mb := testModel(t, 1, 2), testModel(t, 2, 2)
	if err := reg.Set("", ma); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if err := reg.Set("a", nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := reg.Set("a", ma); err != nil {
		t.Fatal(err)
	}
	if err := reg.Set("b", mb); err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Get("a")
	if !ok || got != Model(ma) {
		t.Fatal("tenant a did not resolve to its model")
	}
	if err := reg.Set("a", mb); err != nil {
		t.Fatal(err)
	}
	// The old snapshot keeps resolving for holders; new Gets see the swap.
	if swapped, _ := reg.Get("a"); swapped != Model(mb) {
		t.Fatal("swap not visible to a fresh Get")
	}
	if got != Model(ma) {
		t.Fatal("snapshot mutated by Set")
	}
	reg.Drop("a")
	if _, ok := reg.Get("a"); ok {
		t.Fatal("dropped tenant still resolves")
	}
	names := reg.Tenants()
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("tenants %v, want [b]", names)
	}
	reg.Drop("missing") // no-op
}
