package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"edgehd/internal/hdc"
)

// Model is the read side of a trained classifier the server needs to
// answer queries: shape checks plus the paper's §IV-C confidence-scored
// associative search. *core.Model satisfies it; tests substitute
// instrumented fakes. Implementations must be safe for concurrent
// read-only use — Server fans one batch over pool workers.
type Model interface {
	Dim() int
	Classes() int
	Confidence(q hdc.Bipolar) (class int, conf float64)
}

// Registry maps tenant names to their serving models with copy-on-write
// swap semantics: Set publishes a whole new map, so readers that
// snapshotted the previous map (or the previous model) keep a fully
// consistent view for the rest of their query. A retrain therefore
// swaps the tenant's model between queries, never under one.
//
// Reads are a single atomic pointer load plus a map lookup — no lock on
// the query path. Writers serialize on a mutex.
type Registry struct {
	mu     sync.Mutex
	models atomic.Pointer[map[string]Model]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := make(map[string]Model)
	r.models.Store(&empty)
	return r
}

// Get returns the model currently published for tenant.
func (r *Registry) Get(tenant string) (Model, bool) {
	m, ok := (*r.models.Load())[tenant]
	return m, ok
}

// Set publishes model as tenant's serving model, replacing any previous
// one. In-flight queries that already snapshotted the old model finish
// against it; queries admitted afterwards see the new one.
func (r *Registry) Set(tenant string, model Model) error {
	if tenant == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	if model == nil {
		return fmt.Errorf("serve: nil model for tenant %q", tenant)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.models.Load()
	next := make(map[string]Model, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[tenant] = model
	r.models.Store(&next)
	return nil
}

// Drop unpublishes tenant's model. Queries already holding a snapshot
// finish; new queries for the tenant are rejected.
func (r *Registry) Drop(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.models.Load()
	if _, ok := old[tenant]; !ok {
		return
	}
	next := make(map[string]Model, len(old))
	for k, v := range old {
		if k != tenant {
			next[k] = v
		}
	}
	r.models.Store(&next)
}

// Tenants returns the published tenant names in sorted order.
func (r *Registry) Tenants() []string {
	m := *r.models.Load()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
