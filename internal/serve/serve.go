// Package serve is EdgeHD's query-serving front end: a wire-protocol
// server that answers MsgQuery frames with confidence-scored
// predictions (§IV-C) at high throughput by coalescing concurrent
// queries into pooled batches.
//
// Connections speak the internal/wire protocol. A client opens with a
// MsgHello frame naming its tenant, then pipelines MsgQuery frames
// (Header.Batch carries a client-chosen sequence number); the server
// answers each with a MsgPredict frame echoing the sequence number, or
// a MsgBusy frame when admission control sheds it. Terminal failures —
// unknown tenant, dimension mismatch, protocol violation — arrive as a
// MsgError frame, after which the connection is dead.
//
// Three mechanisms bound the work in flight:
//
//   - Batching: a dispatcher drains the admission queue into batches of
//     at most MaxBatch queries, closing a batch early after BatchWindow
//     without a new arrival. Each batch fans over the parallel pool's
//     chunked execution, so per-query results are byte-identical to the
//     sequential path at any worker count.
//   - Admission control: the queue holds at most QueueDepth admitted
//     queries; when it is full (or the server is draining) the query is
//     rejected immediately with MsgBusy instead of queueing unbounded.
//   - Graceful drain: Close stops admission, waits for every admitted
//     query to be answered, then shuts the dispatcher and connections
//     down. Wire it to process teardown with telemetry.Lifecycle:
//     life.Defer(func() { _ = srv.Close() }).
//
// Models are resolved per query through a copy-on-write Registry, so a
// retrain swaps a tenant's model between queries without pausing the
// server or racing in-flight batches.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"edgehd/internal/hdc"
	"edgehd/internal/parallel"
	"edgehd/internal/telemetry"
	"edgehd/internal/wire"
)

// Config shapes a Server. The zero value of every field except
// Registry is usable; defaults are applied by NewServer.
type Config struct {
	// Registry resolves tenant names to serving models. Required.
	Registry *Registry
	// Pool executes batch classification; nil or 1-worker runs
	// sequentially. Chunk layout depends only on batch size, so results
	// are byte-identical at any worker count.
	Pool *parallel.Pool
	// MaxBatch caps how many queries one batch coalesces. Default 64.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits for more queries
	// after the first before closing a partial batch. Default 2ms.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; a query arriving on a full
	// queue is rejected with MsgBusy. Default 1024.
	QueueDepth int
	// IOTimeout bounds every reply write (and the handshake read) on a
	// deadline-capable connection, so one stalled client cannot wedge a
	// dispatch cycle. Default 30s; negative disables.
	IOTimeout time.Duration
	// IdleTimeout bounds how long a connection may sit between query
	// frames. Default 0 (no idle limit; the client closes).
	IdleTimeout time.Duration
	// MaxQueryPayload caps the payload length accepted on the query
	// loop, tightening wire.MaxPayload to serving-sized frames.
	// Default 1 MiB (a 4M-dimension query; far above any real model).
	MaxQueryPayload int
	// SLOObjective and SLOTarget define the serving SLO: SLOTarget of
	// queries must complete within SLOObjective seconds. Defaults 0.05s
	// at 0.99. Published as slo_* gauges when Telemetry is set.
	SLOObjective float64
	SLOTarget    float64
	// Telemetry publishes serve_* metrics and the serving SLO. Nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
	// Tracer opens one serve_query root span per admitted query
	// (tenant, class, batch size; admission-to-reply duration) and a
	// serve_shed span per rejection. Nil disables tracing. When the
	// tracer carries a telemetry.Sampler, head-dropped queries skip span
	// materialization entirely and slow/errored/shed queries are
	// retained for /debug/traces and flight bundles.
	Tracer *telemetry.Tracer
	// Logger receives structured connection/drain records. Nil silences.
	Logger *telemetry.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Registry == nil {
		return c, fmt.Errorf("serve: config needs a Registry")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 30 * time.Second
	}
	if c.MaxQueryPayload <= 0 {
		c.MaxQueryPayload = 1 << 20
	}
	if c.SLOObjective == 0 {
		c.SLOObjective = 0.05
	}
	if c.SLOTarget == 0 {
		c.SLOTarget = 0.99
	}
	return c, nil
}

// helloLimit caps the handshake frame: a tenant name, never a model.
const helloLimit = 2 << 10

// maxErrorText caps the text echoed back in MsgError replies.
const maxErrorText = 512

// Stats is a point-in-time snapshot of the server's query counters.
type Stats struct {
	// Admitted queries entered the batch queue (each is answered with
	// exactly one MsgPredict, even across a drain).
	Admitted uint64
	// Rejected queries were shed with MsgBusy by admission control.
	Rejected uint64
	// Replied counts MsgPredict frames successfully written.
	Replied uint64
	// Batches counts dispatched batches; Admitted/Batches is the mean
	// coalescing factor.
	Batches uint64
}

// request is one admitted query: the connection to answer on, the
// client's sequence number, the query hypervector, and the model
// snapshot it will be scored against.
type request struct {
	c     *srvConn
	seq   int32
	q     hdc.Bipolar
	model Model
	stop  func()                // latency timer, armed at admission
	sp    *telemetry.SpanHandle // serve_query root span (nil untraced)
}

// Server accepts wire-protocol connections and answers queries in
// pooled batches. Construct with NewServer; run Serve (per listener)
// or ServeConn (per connection) from the caller's goroutines; Close
// drains gracefully.
type Server struct {
	cfg Config
	log *telemetry.Logger

	queue chan request
	stop  chan struct{} // closed after drain: dispatcher exit signal

	// admitMu pairs the draining flag with inflight.Add: admission holds
	// the read side, so once Close flips draining under the write lock
	// no new inflight increments can race its Wait.
	admitMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	dispatchWG sync.WaitGroup
	connWG     sync.WaitGroup

	mu   sync.Mutex
	lns  map[net.Listener]struct{}
	open map[net.Conn]struct{}

	admitted atomic.Uint64
	rejected atomic.Uint64
	replied  atomic.Uint64
	batches  atomic.Uint64

	queries    *telemetry.Counter
	rejects    *telemetry.Counter
	connGauge  *telemetry.Gauge
	queueGauge *telemetry.Gauge
	batchHist  *telemetry.Histogram
	latHist    *telemetry.Histogram
	slo        *telemetry.SLO
}

// NewServer validates cfg, registers the serve_* metric family, and
// starts the batch dispatcher.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger.WithComponent("serve"),
		queue: make(chan request, cfg.QueueDepth),
		stop:  make(chan struct{}),
		lns:   make(map[net.Listener]struct{}),
		open:  make(map[net.Conn]struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.SetHelp("serve_queries_total", "queries admitted to the batch queue")
		reg.SetHelp("serve_rejects_total", "queries shed with MsgBusy by admission control")
		reg.SetHelp("serve_connections", "currently open serving connections")
		reg.SetHelp("serve_batch_size", "queries coalesced per dispatched batch")
		reg.SetHelp("serve_latency_seconds", "admission-to-reply latency of served queries")
		reg.SetHelp("serve_queue_depth", "queries sitting in the admission queue")
		reg.SetHelp("serve_tenant_queries_total", "query frames received per tenant")
		s.queries = reg.Counter("serve_queries_total")
		s.rejects = reg.Counter("serve_rejects_total")
		s.connGauge = reg.Gauge("serve_connections")
		s.queueGauge = reg.Gauge("serve_queue_depth")
		s.batchHist = reg.Histogram("serve_batch_size")
		s.latHist = reg.Histogram("serve_latency_seconds")
		s.slo, err = telemetry.NewSLO(reg, "serve_latency", s.latHist, cfg.SLOObjective, cfg.SLOTarget)
		if err != nil {
			return nil, err
		}
	}
	s.dispatchWG.Add(1)
	go func() {
		defer s.dispatchWG.Done()
		s.dispatch()
	}()
	return s, nil
}

// SLO returns the serving latency SLO (nil without telemetry); callers
// hook its Collect into their runtime collector cadence.
func (s *Server) SLO() *telemetry.SLO { return s.slo }

// Stats snapshots the query counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted: s.admitted.Load(),
		Rejected: s.rejected.Load(),
		Replied:  s.replied.Load(),
		Batches:  s.batches.Load(),
	}
}

// Ready is a telemetry.Health readiness check: an error while the
// server is draining (or closed), nil while it accepts queries.
func (s *Server) Ready() error {
	if s.isDraining() {
		return errors.New("serve: draining")
	}
	return nil
}

func (s *Server) isDraining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Serve accepts connections on ln until Close (which closes the
// listener) or a non-drain accept error. Run it on its own goroutine;
// it handles each connection concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			if err := s.ServeConn(nc); err != nil && !s.isDraining() {
				s.log.Warn("connection failed", "remote", nc.RemoteAddr().String(), "error", err.Error())
			}
		}()
	}
}

// srvConn wraps one client connection with a write mutex so batch
// replies, busy rejections, and error frames from different goroutines
// interleave at frame granularity.
type srvConn struct {
	nc        net.Conn
	tenant    string
	ioTimeout time.Duration
	// queries is the connection's serve_tenant_queries_total{tenant}
	// counter, resolved once at handshake so the query loop never takes
	// the registry's label-lookup path.
	queries *telemetry.Counter
	wmu     sync.Mutex
}

func (c *srvConn) write(m wire.Message) error {
	c.wmu.Lock() //hdlint:allow lock-across-io the mutex exists to serialize frame writes; the write deadline bounds the hold
	defer c.wmu.Unlock()
	disarm := armWriteDeadline(c.nc, c.ioTimeout)
	err := wire.Write(c.nc, m)
	disarm()
	return err
}

// fail sends a terminal MsgError naming the cause (best effort) and
// returns the cause for the handler to surface.
func (c *srvConn) fail(cause error) error {
	text := cause.Error()
	if len(text) > maxErrorText {
		text = text[:maxErrorText]
	}
	_ = c.write(wire.Message{Header: wire.Header{Type: wire.MsgError}, Text: text})
	return cause
}

// ServeConn runs one connection's handshake and query loop to
// completion. It returns nil on a clean client close (EOF or MsgDone)
// and on connections cut by a server drain.
func (s *Server) ServeConn(nc net.Conn) error {
	s.mu.Lock()
	s.open[nc] = struct{}{}
	s.mu.Unlock()
	s.connGauge.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.open, nc)
		s.mu.Unlock()
		s.connGauge.Add(-1)
		_ = nc.Close()
	}()
	c := &srvConn{nc: nc, ioTimeout: s.cfg.IOTimeout}

	// Handshake: the first frame names the tenant. The handshake read is
	// deadline-bounded even when IdleTimeout is off — a connection that
	// never identifies itself should not pin a handler.
	disarm := armReadDeadline(nc, s.cfg.IOTimeout)
	hello, err := wire.ReadLimit(nc, helloLimit)
	disarm()
	if err != nil {
		return fmt.Errorf("serve: handshake read: %w", err)
	}
	if hello.Header.Type != wire.MsgHello {
		return c.fail(fmt.Errorf("serve: expected MsgHello, got frame type %d", hello.Header.Type))
	}
	if _, ok := s.cfg.Registry.Get(hello.Text); !ok {
		return c.fail(fmt.Errorf("serve: unknown tenant %q", hello.Text))
	}
	c.tenant = hello.Text
	if reg := s.cfg.Telemetry; reg != nil {
		c.queries = reg.Counter("serve_tenant_queries_total", telemetry.L("tenant", c.tenant))
	}
	s.log.Debug("connection opened", "tenant", c.tenant)

	for {
		disarm := armReadDeadline(nc, s.cfg.IdleTimeout)
		msg, err := wire.ReadLimit(nc, s.cfg.MaxQueryPayload)
		disarm()
		if err != nil {
			if errors.Is(err, io.EOF) || s.isDraining() {
				return nil
			}
			return fmt.Errorf("serve: query read: %w", err)
		}
		switch msg.Header.Type {
		case wire.MsgDone:
			return nil
		case wire.MsgQuery:
			c.queries.Inc()
			// Per-query registry snapshot: a copy-on-write Set between
			// two queries on this connection takes effect immediately.
			model, ok := s.cfg.Registry.Get(c.tenant)
			if !ok {
				return c.fail(fmt.Errorf("serve: tenant %q no longer published", c.tenant))
			}
			if msg.Bipolar.Dim() != model.Dim() {
				return c.fail(fmt.Errorf("serve: query dim %d != model dim %d for tenant %q",
					msg.Bipolar.Dim(), model.Dim(), c.tenant))
			}
			if !s.admit(request{c: c, seq: msg.Header.Batch, q: msg.Bipolar, model: model}) {
				s.rejected.Add(1)
				s.rejects.Inc()
				// A shed-attributed root span: a tail sampler retains the
				// trace under its "shed" reason, so /debug/traces and flight
				// bundles show who was turned away and when.
				s.cfg.Tracer.StartSpan("serve_shed", s.cfg.Tracer.NewTrace()).
					SetStr("tenant", c.tenant).SetInt("shed", 1).End()
				if err := c.write(wire.Message{Header: wire.Header{Type: wire.MsgBusy, Batch: msg.Header.Batch}}); err != nil {
					return fmt.Errorf("serve: busy reply: %w", err)
				}
			}
		default:
			return c.fail(fmt.Errorf("serve: unexpected frame type %d on query loop", msg.Header.Type))
		}
	}
}

// admit enqueues r unless the server is draining or the queue is full.
// The inflight increment happens under the admission read lock, so a
// concurrent Close either sees the increment or rejects the query —
// never a query admitted after the drain began.
func (s *Server) admit(r request) bool {
	s.admitMu.RLock() //hdlint:allow lock-across-io the enqueue select is non-blocking (default rejects); the lock pairs the inflight increment with the draining check
	defer s.admitMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	// One trace per admitted query; a head-sampling tracer hands out a
	// zero context here and both the exemplar (traceID 0) and the span
	// (nil handle) quietly degrade to the untraced path.
	tc := s.cfg.Tracer.NewTrace()
	r.stop = s.latHist.StartTimerExemplar(tc.TraceID)
	r.sp = s.cfg.Tracer.StartSpan("serve_query", tc)
	r.sp.SetStr("tenant", r.c.tenant)
	select {
	case s.queue <- r:
		s.admitted.Add(1)
		s.queries.Inc()
		s.queueGauge.Add(1)
		return true
	default:
		// Never Ended, the abandoned span is simply never recorded.
		s.inflight.Done()
		return false
	}
}

// dispatch is the batching loop: block for one query, coalesce more up
// to MaxBatch/BatchWindow, execute the batch over the pool, reply.
func (s *Server) dispatch() {
	for {
		var first request
		select {
		case first = <-s.queue:
			s.queueGauge.Add(-1)
		case <-s.stop:
			return
		}
		s.runBatch(s.collect(first))
	}
}

// collect coalesces queued queries behind first until the batch is full
// or BatchWindow passes without the batch filling.
func (s *Server) collect(first request) []request {
	batch := append(make([]request, 0, s.cfg.MaxBatch), first)
	// The batch window is wall-clock by design; it shapes only *which*
	// queries share a batch, never any query's result (per-item scoring
	// is independent and chunk layout depends only on batch size).
	timer := time.NewTimer(s.cfg.BatchWindow) //hdlint:allow det-rand batching window is scheduling, not data
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r := <-s.queue:
			s.queueGauge.Add(-1)
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// runBatch scores the batch over the pool and writes one reply per
// query. Scoring fans over chunk workers; replies are written from this
// goroutine in batch order, so each connection sees its replies in the
// order its queries were admitted.
func (s *Server) runBatch(batch []request) {
	s.batches.Add(1)
	s.batchHist.Observe(float64(len(batch)))
	type result struct {
		class int32
		conf  float64
	}
	res := make([]result, len(batch))
	s.cfg.Pool.RunChunks("serve_batch", parallel.Chunks(len(batch)), func(_ int, sp parallel.Span) {
		for i := sp.Lo; i < sp.Hi; i++ {
			class, conf := batch[i].model.Confidence(batch[i].q)
			res[i] = result{class: int32(class), conf: conf}
		}
	})
	for i := range batch {
		r := batch[i]
		err := r.c.write(wire.Message{
			Header:     wire.Header{Type: wire.MsgPredict, Class: res[i].class, Batch: r.seq},
			Confidence: res[i].conf,
		})
		if err == nil {
			s.replied.Add(1)
			r.sp.SetInt("class", int64(res[i].class)).SetInt("batch_size", int64(len(batch)))
		} else {
			// The error attribute makes the root span a tail-sampler keep.
			r.sp.SetStr("error", err.Error())
			s.log.Warn("reply write failed", "tenant", r.c.tenant, "seq", r.seq, "error", err.Error())
		}
		r.stop()
		r.sp.End()
		s.inflight.Done()
	}
}

// Close drains the server: stop admitting, answer everything already
// admitted, then stop the dispatcher and close listeners/connections.
// Idempotent; safe from a telemetry.Lifecycle Defer.
func (s *Server) Close() error {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		return nil
	}
	s.draining = true
	s.admitMu.Unlock()
	s.mu.Lock()
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	s.inflight.Wait() // every admitted query answered
	close(s.stop)     // queue is empty now; dispatcher can exit
	s.dispatchWG.Wait()
	s.mu.Lock()
	open := make([]net.Conn, 0, len(s.open))
	for nc := range s.open {
		open = append(open, nc)
	}
	s.mu.Unlock()
	for _, nc := range open {
		_ = nc.Close() // unblock handlers parked in Read
	}
	s.connWG.Wait()
	st := s.Stats()
	s.log.Info("server drained",
		"admitted", st.Admitted, "rejected", st.Rejected, "replied", st.Replied, "batches", st.Batches)
	return nil
}

// armReadDeadline / armWriteDeadline bound one frame's I/O on a
// deadline-capable connection, mirroring internal/cluster's discipline.
// Deadline arithmetic is wall-clock by necessity and never feeds the
// numeric pipeline.
func armReadDeadline(r io.Reader, timeout time.Duration) func() {
	c, ok := r.(interface{ SetReadDeadline(time.Time) error })
	if !ok || timeout <= 0 {
		return func() {}
	}
	_ = c.SetReadDeadline(time.Now().Add(timeout)) //hdlint:allow det-rand I/O deadline, not data
	return func() { _ = c.SetReadDeadline(time.Time{}) }
}

func armWriteDeadline(w io.Writer, timeout time.Duration) func() {
	c, ok := w.(interface{ SetWriteDeadline(time.Time) error })
	if !ok || timeout <= 0 {
		return func() {}
	}
	_ = c.SetWriteDeadline(time.Now().Add(timeout)) //hdlint:allow det-rand I/O deadline, not data
	return func() { _ = c.SetWriteDeadline(time.Time{}) }
}
