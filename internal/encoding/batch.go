package encoding

import (
	"edgehd/internal/hdc"
	"edgehd/internal/parallel"
)

// EncodeBatch encodes a feature matrix, fanning the rows over the pool
// in fixed chunks. All four encoders (Nonlinear, Sparse, Linear,
// Image2D) run through this one path. Every encoder is immutable after
// construction and Encode is a pure function of (encoder, row), so
// out[i] == enc.Encode(rows[i]) bit-for-bit regardless of worker
// count; a nil pool executes the rows inline in order — the exact
// sequential path.
func EncodeBatch(p *parallel.Pool, enc Encoder, rows [][]float64) []hdc.Bipolar {
	out := make([]hdc.Bipolar, len(rows))
	p.Run("encode_batch", len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = enc.Encode(rows[i])
		}
	})
	return out
}
