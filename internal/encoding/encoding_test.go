package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"edgehd/internal/rng"
)

func randFeatures(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

func TestNonlinearDeterministic(t *testing.T) {
	a := must(NewNonlinear(10, 256, 42, NonlinearConfig{}))
	b := must(NewNonlinear(10, 256, 42, NonlinearConfig{}))
	f := randFeatures(rng.New(1), 10)
	if !a.Encode(f).Equal(b.Encode(f)) {
		t.Fatal("same seed produced different encodings")
	}
}

func TestNonlinearSeedChangesEncoding(t *testing.T) {
	a := must(NewNonlinear(10, 256, 1, NonlinearConfig{}))
	b := must(NewNonlinear(10, 256, 2, NonlinearConfig{}))
	f := randFeatures(rng.New(1), 10)
	if a.Encode(f).Equal(b.Encode(f)) {
		t.Fatal("different seeds produced identical encodings")
	}
}

func TestNonlinearLocality(t *testing.T) {
	// The common-sense principle of §III: nearby points in the original
	// space must stay similar in hyperspace, distant points dissimilar.
	e := must(NewNonlinear(16, 2048, 7, NonlinearConfig{}))
	r := rng.New(3)
	x := randFeatures(r, 16)
	near := make([]float64, 16)
	far := make([]float64, 16)
	for i := range x {
		near[i] = x[i] + 0.05*r.Norm()
		far[i] = x[i] + 3*r.Norm()
	}
	hx, hn, hf := e.Encode(x), e.Encode(near), e.Encode(far)
	simNear, simFar := hx.Cosine(hn), hx.Cosine(hf)
	if simNear <= simFar+0.2 {
		t.Fatalf("locality violated: sim(near)=%v, sim(far)=%v", simNear, simFar)
	}
	if simNear < 0.5 {
		t.Fatalf("near point similarity too low: %v", simNear)
	}
}

func TestNonlinearDimAndFeatures(t *testing.T) {
	e := must(NewNonlinear(5, 100, 1, NonlinearConfig{}))
	if e.Dim() != 100 || e.NumFeatures() != 5 {
		t.Fatalf("Dim/NumFeatures = %d/%d", e.Dim(), e.NumFeatures())
	}
	if e.MACsPerEncode() != 500 {
		t.Fatalf("MACsPerEncode = %d, want 500", e.MACsPerEncode())
	}
}

func TestNonlinearWrongFeatureCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched feature count did not panic")
		}
	}()
	must(NewNonlinear(5, 100, 1, NonlinearConfig{})).Encode(make([]float64, 6))
}

func TestRFFApproximatesGaussianKernel(t *testing.T) {
	// eq. (1): H_D(x)ᵀH_D(y) ≈ exp(−‖x−y‖²/(2ℓ²)).
	const n, d = 8, 8192
	e := must(NewRFF(n, d, 11, 1.5))
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		x := randFeatures(r, n)
		y := make([]float64, n)
		for i := range y {
			y[i] = x[i] + 0.4*r.Norm()
		}
		var approx float64
		zx, zy := e.Map(x), e.Map(y)
		for i := range zx {
			approx += zx[i] * zy[i]
		}
		exact := e.Kernel(x, y)
		if math.Abs(approx-exact) > 0.06 {
			t.Fatalf("trial %d: RFF dot %v vs kernel %v", trial, approx, exact)
		}
	}
}

func TestRFFSelfKernelIsOne(t *testing.T) {
	e := must(NewRFF(4, 2048, 3, 0))
	x := randFeatures(rng.New(9), 4)
	if k := e.Kernel(x, x); k != 1 {
		t.Fatalf("self kernel = %v", k)
	}
}

func TestSparseMatchesDenseStatistics(t *testing.T) {
	// Sparse encoding should preserve the locality property despite
	// dropping 80% of the weights.
	e := must(NewSparse(32, 2048, 13, SparseConfig{Sparsity: 0.8}))
	r := rng.New(4)
	x := randFeatures(r, 32)
	near := make([]float64, 32)
	for i := range x {
		near[i] = x[i] + 0.05*r.Norm()
	}
	far := randFeatures(r, 32)
	hx := e.Encode(x)
	simNear, simFar := hx.Cosine(e.Encode(near)), hx.Cosine(e.Encode(far))
	if simNear <= simFar+0.2 {
		t.Fatalf("sparse locality violated: near=%v far=%v", simNear, simFar)
	}
}

func TestSparseWindowSize(t *testing.T) {
	e := must(NewSparse(500, 64, 1, SparseConfig{Sparsity: 0.8}))
	if e.Window() != 100 {
		t.Fatalf("window = %d, want 100", e.Window())
	}
	if e.MACsPerEncode() != 64*100 {
		t.Fatalf("MACsPerEncode = %d", e.MACsPerEncode())
	}
	if e.Sparsity() != 0.8 {
		t.Fatalf("Sparsity = %v", e.Sparsity())
	}
	// Small feature counts hit the window floor instead.
	floored := must(NewSparse(100, 64, 1, SparseConfig{Sparsity: 0.8}))
	if floored.Window() != 32 {
		t.Fatalf("floored window = %d, want 32", floored.Window())
	}
}

func TestSparseWindowAtLeastOne(t *testing.T) {
	e := must(NewSparse(2, 16, 1, SparseConfig{Sparsity: 0.9}))
	if e.Window() < 1 {
		t.Fatalf("window = %d", e.Window())
	}
	e.Encode([]float64{1, 2}) // must not panic
}

func TestSparseMACSavings(t *testing.T) {
	dense := must(NewNonlinear(500, 512, 1, NonlinearConfig{}))
	sparse := must(NewSparse(500, 512, 1, SparseConfig{Sparsity: 0.8}))
	if ratio := float64(dense.MACsPerEncode()) / float64(sparse.MACsPerEncode()); math.Abs(ratio-5) > 0.01 {
		t.Fatalf("80%% sparsity should cut MACs 5×, got %v×", ratio)
	}
}

func TestLinearQuantize(t *testing.T) {
	e := must(NewLinear(4, 128, 1, LinearConfig{Levels: 4, Lo: 0, Hi: 4}))
	cases := []struct {
		v    float64
		want int
	}{{-1, 0}, {0, 0}, {0.5, 0}, {1.5, 1}, {2.5, 2}, {3.99, 3}, {4, 3}, {100, 3}}
	for _, c := range cases {
		if got := e.Quantize(c.v); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLinearLevelChainCorrelation(t *testing.T) {
	e := must(NewLinear(4, 4096, 2, LinearConfig{Levels: 8}))
	// Adjacent levels similar, extremes quasi-orthogonal.
	adj := e.LevelSimilarity(3, 4)
	ext := e.LevelSimilarity(0, 7)
	if adj < 0.7 {
		t.Fatalf("adjacent level similarity = %v, want > 0.7", adj)
	}
	if math.Abs(ext) > 0.25 {
		t.Fatalf("extreme level similarity = %v, want ≈ 0", ext)
	}
	// Similarity decreases monotonically with level distance from 0.
	prev := 1.0
	for l := 1; l < 8; l++ {
		s := e.LevelSimilarity(0, l)
		if s > prev+1e-9 {
			t.Fatalf("level similarity not monotone at level %d: %v > %v", l, s, prev)
		}
		prev = s
	}
}

func TestLinearEncodeDeterministic(t *testing.T) {
	a := must(NewLinear(6, 512, 9, LinearConfig{}))
	b := must(NewLinear(6, 512, 9, LinearConfig{}))
	f := randFeatures(rng.New(2), 6)
	if !a.Encode(f).Equal(b.Encode(f)) {
		t.Fatal("linear encoder is not deterministic")
	}
}

func TestLinearLocality(t *testing.T) {
	e := must(NewLinear(8, 2048, 5, LinearConfig{}))
	r := rng.New(6)
	x := randFeatures(r, 8)
	near := make([]float64, 8)
	for i := range x {
		near[i] = x[i] + 0.02
	}
	far := randFeatures(r, 8)
	hx := e.Encode(x)
	if simN, simF := hx.Cosine(e.Encode(near)), hx.Cosine(e.Encode(far)); simN <= simF {
		t.Fatalf("linear locality violated: near=%v far=%v", simN, simF)
	}
}

func TestImage2DPositionKernel(t *testing.T) {
	e := must(NewImage2D(16, 16, 4096, 21, 2))
	// Same position → similarity 1; neighbours high; distant ≈ 0.
	if s := e.PositionSimilarity(5, 5, 5, 5); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self position similarity = %v", s)
	}
	nearSim := e.PositionSimilarity(5, 5, 6, 5)
	farSim := e.PositionSimilarity(0, 0, 15, 15)
	if nearSim < 0.6 {
		t.Fatalf("neighbour position similarity = %v, want > 0.6", nearSim)
	}
	if math.Abs(farSim) > 0.1 {
		t.Fatalf("distant position similarity = %v, want ≈ 0", farSim)
	}
	// It should track the Gaussian kernel of the scaled displacement.
	want := math.Exp(-0.5 * (1.0 / (2 * 2)) * 2) // ‖Δ‖²=2 at (1,1) offset, ℓ=2
	got := e.PositionSimilarity(4, 4, 5, 5)
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("kernel mismatch: got %v want %v", got, want)
	}
}

func TestImage2DShiftSimilarity(t *testing.T) {
	// A one-pixel-shifted image should stay far more similar than a
	// random image — the spatial-structure preservation claim of §III-A.
	const w, h = 12, 12
	e := must(NewImage2D(w, h, 4096, 22, 2))
	r := rng.New(7)
	img := make([]float64, w*h)
	for y := 3; y < 9; y++ {
		for x := 3; x < 9; x++ {
			img[y*w+x] = 1
		}
	}
	shift := make([]float64, w*h)
	for y := 3; y < 9; y++ {
		for x := 4; x < 10; x++ {
			shift[y*w+x] = 1
		}
	}
	noise := make([]float64, w*h)
	for i := range noise {
		if r.Bernoulli(0.25) {
			noise[i] = 1
		}
	}
	base := e.Encode(img)
	if sShift, sNoise := base.Cosine(e.Encode(shift)), base.Cosine(e.Encode(noise)); sShift <= sNoise+0.15 {
		t.Fatalf("shifted image not recognized: shift=%v noise=%v", sShift, sNoise)
	}
}

func TestImage2DSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("image size mismatch did not panic")
		}
	}()
	must(NewImage2D(4, 4, 64, 1, 0)).Encode(make([]float64, 15))
}

// Property: every encoder produces hypervectors of its declared
// dimension for arbitrary inputs.
func TestQuickEncodersProduceDeclaredDim(t *testing.T) {
	nl := must(NewNonlinear(6, 130, 1, NonlinearConfig{}))
	sp := must(NewSparse(6, 130, 2, SparseConfig{}))
	ln := must(NewLinear(6, 130, 3, LinearConfig{}))
	f := func(a, b, c, d, e, g int8) bool {
		feat := []float64{float64(a) / 16, float64(b) / 16, float64(c) / 16,
			float64(d) / 16, float64(e) / 16, float64(g) / 16}
		return nl.Encode(feat).Dim() == 130 &&
			sp.Encode(feat).Dim() == 130 &&
			ln.Encode(feat).Dim() == 130
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is a pure function — the same input always yields
// the same hypervector.
func TestQuickEncodePure(t *testing.T) {
	e := must(NewNonlinear(4, 256, 17, NonlinearConfig{}))
	f := func(a, b, c, d int8) bool {
		feat := []float64{float64(a), float64(b), float64(c), float64(d)}
		return e.Encode(feat).Equal(e.Encode(feat))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// must unwraps a constructor result; tests treat construction failure
// as fatal.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
