package encoding

import (
	"fmt"

	"edgehd/internal/hdc"
	"edgehd/internal/rng"
)

// Linear is the baseline ID-level encoder of the prior HD classifier
// that Fig 7 compares against ([36], "which uses a linear encoding
// method"). Each feature f_i gets a random ID hypervector; its value is
// quantized into one of Q levels, each level mapped to a level
// hypervector. Level hypervectors form a correlated chain: L_0 is
// random, and each subsequent level flips a fresh batch of D/(2(Q−1))
// positions, so L_0 and L_{Q−1} end up quasi-orthogonal while adjacent
// levels stay similar. The sample encoding bundles ID⊙Level bindings:
//
//	H = sign( Σ_i ID_i ⊙ L(q(f_i)) )
//
// Because the value enters only through the quantized level, the map is
// linear in the feature-similarity sense — the weakness EdgeHD's
// non-linear encoder removes (worth ~4.7% accuracy in the paper).
type Linear struct {
	n, d     int
	levels   int
	lo, hi   float64 // quantization range
	ids      []hdc.Bipolar
	levelHVs []hdc.Bipolar
}

var _ Encoder = (*Linear)(nil)

// LinearConfig parameterizes the baseline encoder.
type LinearConfig struct {
	// Levels Q of value quantization. Default 16.
	Levels int
	// Lo, Hi bound the expected feature range; values are clamped.
	// Defaults −3, +3 (z-scored features).
	Lo, Hi float64
}

// NewLinear constructs a baseline linear encoder.
func NewLinear(n, d int, seed uint64, cfg LinearConfig) (*Linear, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("encoding: non-positive encoder size %dx%d", n, d)
	}
	q := cfg.Levels
	if q == 0 {
		q = 16
	}
	if q < 2 {
		return nil, fmt.Errorf("encoding: need at least 2 quantization levels, got %d", q)
	}
	lo, hi := cfg.Lo, cfg.Hi
	if lo == 0 && hi == 0 {
		lo, hi = -3, 3
	}
	if hi <= lo {
		return nil, fmt.Errorf("encoding: invalid quantization range [%g, %g]", lo, hi)
	}
	r := rng.New(seed)
	e := &Linear{
		n:        n,
		d:        d,
		levels:   q,
		lo:       lo,
		hi:       hi,
		ids:      make([]hdc.Bipolar, n),
		levelHVs: make([]hdc.Bipolar, q),
	}
	for i := range e.ids {
		e.ids[i] = hdc.RandomBipolar(d, r)
	}
	// Correlated level chain: flip disjoint batches of positions so the
	// Hamming distance grows linearly with the level gap.
	e.levelHVs[0] = hdc.RandomBipolar(d, r)
	perm := r.Perm(d)
	flipPerStep := d / (2 * (q - 1))
	if flipPerStep < 1 {
		flipPerStep = 1
	}
	pos := 0
	for l := 1; l < q; l++ {
		next := e.levelHVs[l-1].Clone()
		for k := 0; k < flipPerStep; k++ {
			idx := perm[pos%d]
			pos++
			next.Set(idx, next.Get(idx) == -1) // flip
		}
		e.levelHVs[l] = next
	}
	return e, nil
}

// Dim implements Encoder.
func (e *Linear) Dim() int { return e.d }

// NumFeatures implements Encoder.
func (e *Linear) NumFeatures() int { return e.n }

// Levels returns the number of quantization levels Q.
func (e *Linear) Levels() int { return e.levels }

// Quantize maps a raw value to its level index, clamping to the range.
func (e *Linear) Quantize(v float64) int {
	if v <= e.lo {
		return 0
	}
	if v >= e.hi {
		return e.levels - 1
	}
	l := int(float64(e.levels) * (v - e.lo) / (e.hi - e.lo))
	if l >= e.levels {
		l = e.levels - 1
	}
	return l
}

// Encode implements Encoder.
func (e *Linear) Encode(features []float64) hdc.Bipolar {
	checkFeatures(len(features), e.n)
	acc := hdc.NewAcc(e.d)
	for i, f := range features {
		acc.AddBipolar(e.ids[i].Bind(e.levelHVs[e.Quantize(f)]))
	}
	return acc.Sign()
}

// LevelSimilarity returns the cosine similarity between two level
// hypervectors, exposed for tests of the correlated-chain property.
func (e *Linear) LevelSimilarity(a, b int) float64 {
	return e.levelHVs[a].Cosine(e.levelHVs[b])
}
