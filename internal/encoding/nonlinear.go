package encoding

import (
	"fmt"
	"math"

	"edgehd/internal/hdc"
	"edgehd/internal/rng"
)

// Nonlinear is the paper's universal non-linear encoder (§III-A, Fig 2b).
// Each hypervector dimension is
//
//	h_i = cos(B_i·F + b_i) · sin(B_i·F)
//
// with B_i ~ N(0, 1/ℓ²)ⁿ and b_i ~ U(0, 2π) drawn once at construction,
// followed by sign() binarization. The product of the phase-shifted
// cosine and the sine decorrelates the dimensions beyond the plain RFF
// map while keeping the RBF-kernel geometry: nearby inputs agree on many
// signs, distant inputs agree on ~half.
type Nonlinear struct {
	n, d        int
	lengthScale float64
	bases       [][]float64 // d rows of n Gaussian weights
	biases      []float64   // d uniform phase shifts
}

var _ Encoder = (*Nonlinear)(nil)

// NonlinearConfig parameterizes the encoder. Zero values select the
// paper's defaults.
type NonlinearConfig struct {
	// LengthScale ℓ of the RBF kernel exp(−‖x−y‖²/(2ℓ²)); weights are
	// drawn from N(0, 1/ℓ²). Default √n: for z-scored features the
	// expected squared distance between two random samples grows
	// linearly with the feature count, so the kernel bandwidth must
	// grow with √n to keep similarities informative (the same
	// median-distance heuristic the paper's grid search would land on).
	LengthScale float64
}

// NewNonlinear constructs an encoder for n features and dimension d,
// drawing all bases from seed.
func NewNonlinear(n, d int, seed uint64, cfg NonlinearConfig) (*Nonlinear, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("encoding: non-positive encoder size %dx%d", n, d)
	}
	ls := cfg.LengthScale
	if ls == 0 {
		ls = math.Sqrt(float64(n))
	}
	r := rng.New(seed)
	e := &Nonlinear{
		n:           n,
		d:           d,
		lengthScale: ls,
		bases:       make([][]float64, d),
		biases:      make([]float64, d),
	}
	inv := 1 / ls
	for i := 0; i < d; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.Norm() * inv
		}
		e.bases[i] = row
		e.biases[i] = r.Uniform(0, 2*math.Pi)
	}
	return e, nil
}

// Dim implements Encoder.
func (e *Nonlinear) Dim() int { return e.d }

// NumFeatures implements Encoder.
func (e *Nonlinear) NumFeatures() int { return e.n }

// EncodeFloat returns the pre-binarization hypervector
// h_i = cos(B_i·F + b_i)·sin(B_i·F).
//
//hdlint:hotpath
func (e *Nonlinear) EncodeFloat(features []float64) []float64 {
	checkFeatures(len(features), e.n)
	out := make([]float64, e.d)
	for i := 0; i < e.d; i++ {
		dot := hdc.Dot(e.bases[i], features)
		out[i] = math.Cos(dot+e.biases[i]) * math.Sin(dot)
	}
	return out
}

// Encode implements Encoder: the float encoding followed by sign().
func (e *Nonlinear) Encode(features []float64) hdc.Bipolar {
	return hdc.FromSigns(e.EncodeFloat(features))
}

// MACsPerEncode returns the number of multiply-accumulate operations one
// encoding performs (d dot products of length n). The device models use
// it to convert work into latency and energy.
func (e *Nonlinear) MACsPerEncode() int64 {
	return int64(e.d) * int64(e.n)
}
