package encoding

import (
	"fmt"
	"math"

	"edgehd/internal/rng"
)

// RFF is the raw random-Fourier-feature map of eq. (2),
//
//	H_D(F) = sqrt(2/D) · cos(B·F + b),
//
// which approximates the shift-invariant RBF kernel through inner
// products (eq. 1): H_D(x)ᵀH_D(y) → exp(−‖x−y‖²/(2ℓ²)) as D → ∞.
// EdgeHD binarizes a variant of this map for classification; the raw map
// is kept for the kernel-approximation property tests and as the feature
// map of the RBF-SVM baseline.
type RFF struct {
	n, d        int
	lengthScale float64
	bases       [][]float64
	biases      []float64
}

// NewRFF constructs the feature map for n inputs and d output features.
// lengthScale ℓ sets the kernel bandwidth; pass 0 for the default of √n
// (see NonlinearConfig.LengthScale).
func NewRFF(n, d int, seed uint64, lengthScale float64) (*RFF, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("encoding: non-positive encoder size %dx%d", n, d)
	}
	if lengthScale == 0 {
		lengthScale = math.Sqrt(float64(n))
	}
	r := rng.New(seed)
	e := &RFF{
		n:           n,
		d:           d,
		lengthScale: lengthScale,
		bases:       make([][]float64, d),
		biases:      make([]float64, d),
	}
	inv := 1 / lengthScale
	for i := 0; i < d; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.Norm() * inv
		}
		e.bases[i] = row
		e.biases[i] = r.Uniform(0, 2*math.Pi)
	}
	return e, nil
}

// Dim returns the output feature count D.
func (e *RFF) Dim() int { return e.d }

// NumFeatures returns the input feature count n.
func (e *RFF) NumFeatures() int { return e.n }

// Map computes H_D(F).
func (e *RFF) Map(features []float64) []float64 {
	checkFeatures(len(features), e.n)
	out := make([]float64, e.d)
	scale := math.Sqrt(2 / float64(e.d))
	for i := 0; i < e.d; i++ {
		var dot float64
		for j, w := range e.bases[i] {
			dot += w * features[j]
		}
		out[i] = scale * math.Cos(dot+e.biases[i])
	}
	return out
}

// Kernel returns the exact RBF kernel value exp(−‖x−y‖²/(2ℓ²)) that the
// map approximates, for validation.
func (e *RFF) Kernel(x, y []float64) float64 {
	checkFeatures(len(x), e.n)
	checkFeatures(len(y), e.n)
	var d2 float64
	for i := range x {
		diff := x[i] - y[i]
		d2 += diff * diff
	}
	return math.Exp(-d2 / (2 * e.lengthScale * e.lengthScale))
}
