package encoding

import (
	"testing"

	"edgehd/internal/parallel"
	"edgehd/internal/rng"
)

// Compile-time check: all four encoders sit behind the Encoder
// interface and therefore behind the one EncodeBatch path.
var (
	_ Encoder = (*Nonlinear)(nil)
	_ Encoder = (*Sparse)(nil)
	_ Encoder = (*Linear)(nil)
	_ Encoder = (*Image2D)(nil)
)

func TestImage2DNumFeatures(t *testing.T) {
	e, err := NewImage2D(5, 3, 64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumFeatures() != 15 {
		t.Fatalf("NumFeatures() = %d, want 15", e.NumFeatures())
	}
}

// TestEncodeBatchMatchesSequential proves the batch path bit-identical
// to per-row Encode for every encoder and several worker counts,
// including the nil-pool sequential path.
func TestEncodeBatchMatchesSequential(t *testing.T) {
	const n, d = 12, 256
	encoders := map[string]Encoder{}
	if e, err := NewNonlinear(n, d, 3, NonlinearConfig{}); err == nil {
		encoders["nonlinear"] = e
	} else {
		t.Fatal(err)
	}
	if e, err := NewSparse(n, d, 4, SparseConfig{}); err == nil {
		encoders["sparse"] = e
	} else {
		t.Fatal(err)
	}
	if e, err := NewLinear(n, d, 5, LinearConfig{}); err == nil {
		encoders["linear"] = e
	} else {
		t.Fatal(err)
	}
	if e, err := NewImage2D(4, 3, d, 6, 0); err == nil {
		encoders["image2d"] = e
	} else {
		t.Fatal(err)
	}

	names := []string{"nonlinear", "sparse", "linear", "image2d"}
	for _, name := range names {
		enc := encoders[name]
		r := rng.New(42)
		rows := make([][]float64, 37)
		for i := range rows {
			row := make([]float64, enc.NumFeatures())
			for j := range row {
				row[j] = r.Float64()*2 - 1
			}
			rows[i] = row
		}
		want := make([][]uint64, len(rows))
		for i, row := range rows {
			want[i] = enc.Encode(row).Words()
		}
		pools := []*parallel.Pool{nil, parallel.New(1), parallel.New(2), parallel.New(8)}
		for pi, p := range pools {
			got := EncodeBatch(p, enc, rows)
			if len(got) != len(rows) {
				t.Fatalf("%s pool %d: %d outputs", name, pi, len(got))
			}
			for i := range got {
				gw := got[i].Words()
				for wi := range gw {
					if gw[wi] != want[i][wi] {
						t.Fatalf("%s workers=%d: row %d differs from sequential encode", name, p.Workers(), i)
					}
				}
			}
		}
	}
}
