package encoding

import (
	"fmt"
	"math"

	"edgehd/internal/hdc"
	"edgehd/internal/rng"
)

// Image2D is the fractional-power 2D image encoder of §III-A. Two base
// hypervectors B_x = e^{iθ_x/w_x} and B_y = e^{iθ_y/w_y} (θ ~ N(0,1)^D)
// identify positions: pixel (X, Y) gets the ID phasor B_x^X ⊙ B_y^Y,
// whose phase is X·θ_x/w_x + Y·θ_y/w_y. Raising a phasor to a power
// multiplies its phase, so nearby pixels get correlated IDs — the
// similarity of two position IDs converges to the Gaussian kernel
// k((X₁−X₂)/w) as D → ∞, which preserves spatial structure. The image
// encoding bundles value-weighted pixel phasors,
//
//	V_F = Σ_{X,Y} P_{X,Y} · B_x^X ⊙ B_y^Y,
//
// and binarizes the real part.
type Image2D struct {
	w, h        int
	d           int
	thetaX      []float64 // per-dimension base phase, x axis
	thetaY      []float64 // per-dimension base phase, y axis
	lengthScale float64
}

// NewImage2D constructs an encoder for w×h images with hypervector
// dimension d. lengthScale is the kernel width in pixels (0 selects a
// default of 2, giving IDs correlated across ~2-pixel neighbourhoods).
func NewImage2D(w, h, d int, seed uint64, lengthScale float64) (*Image2D, error) {
	if w <= 0 || h <= 0 || d <= 0 {
		return nil, fmt.Errorf("encoding: non-positive encoder size %dx%dx%d", w, h, d)
	}
	if lengthScale == 0 {
		lengthScale = 2
	}
	r := rng.New(seed)
	e := &Image2D{
		w:           w,
		h:           h,
		d:           d,
		thetaX:      make([]float64, d),
		thetaY:      make([]float64, d),
		lengthScale: lengthScale,
	}
	for i := 0; i < d; i++ {
		e.thetaX[i] = r.Norm() / lengthScale
		e.thetaY[i] = r.Norm() / lengthScale
	}
	return e, nil
}

// Dim returns the hypervector dimensionality.
func (e *Image2D) Dim() int { return e.d }

// Size returns the expected image width and height.
func (e *Image2D) Size() (w, h int) { return e.w, e.h }

// NumFeatures returns the flattened pixel count w·h, making Image2D a
// full Encoder so image pipelines ride the same EncodeBatch path as the
// vector encoders.
func (e *Image2D) NumFeatures() int { return e.w * e.h }

// PositionSimilarity returns the empirical cosine similarity between the
// position IDs of (x1, y1) and (x2, y2): the real part of the mean
// conjugate product of the two phasors, which approximates the Gaussian
// kernel of the scaled displacement.
func (e *Image2D) PositionSimilarity(x1, y1, x2, y2 int) float64 {
	var sum float64
	dx, dy := float64(x1-x2), float64(y1-y2)
	for i := 0; i < e.d; i++ {
		sum += math.Cos(dx*e.thetaX[i] + dy*e.thetaY[i])
	}
	return sum / float64(e.d)
}

// EncodeFloat maps a row-major w×h pixel image to the real part of the
// bundled phasor hypervector.
func (e *Image2D) EncodeFloat(pixels []float64) []float64 {
	if len(pixels) != e.w*e.h {
		// Encoders are wired to fixed-size sensors; a mismatched frame is
		// a programming error on the Encode hot path, not a runtime
		// condition an error return could recover.
		panic("encoding: image size mismatch") //hdlint:allow panic-policy sanctioned hot-path guard
	}
	out := make([]float64, e.d)
	for i := 0; i < e.d; i++ {
		var re float64
		tx, ty := e.thetaX[i], e.thetaY[i]
		for y := 0; y < e.h; y++ {
			base := float64(y) * ty
			row := pixels[y*e.w:]
			for x := 0; x < e.w; x++ {
				p := row[x]
				if p == 0 {
					continue
				}
				re += p * math.Cos(float64(x)*tx+base)
			}
		}
		out[i] = re
	}
	return out
}

// Encode maps an image to a bipolar hypervector.
func (e *Image2D) Encode(pixels []float64) hdc.Bipolar {
	return hdc.FromSigns(e.EncodeFloat(pixels))
}
