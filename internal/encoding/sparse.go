package encoding

import (
	"fmt"
	"math"

	"edgehd/internal/hdc"
	"edgehd/internal/rng"
)

// minWindow floors the per-row non-zero count of the sparse encoder.
const minWindow = 32

// Sparse is the FPGA-oriented variant of the non-linear encoder (§V-A).
// Instead of a dense n-wide Gaussian row per hypervector dimension, each
// row keeps a single contiguous window of w = max(1, round((1−s)·n))
// non-zero weights starting at a random feature index, stored as the
// window plus a log2(n)-bit start offset — exactly the BRAM layout the
// paper describes. Sparsity s = 0.8 is the paper's evaluation default
// ("the accuracy of EdgeHD is reported for D = 4000 dimensions and 80%
// sparsity"); it cuts the encoding MACs by 5× with little accuracy loss.
type Sparse struct {
	n, d        int
	window      int
	sparsity    float64
	lengthScale float64
	starts      []int       // d start offsets into the feature vector
	weights     [][]float64 // d windows of `window` Gaussian weights
	biases      []float64
}

var _ Encoder = (*Sparse)(nil)

// SparseConfig parameterizes the sparse encoder.
type SparseConfig struct {
	// Sparsity s ∈ [0, 1): the fraction of zero weights per row.
	// Default 0.8, the paper's setting.
	Sparsity float64
	// LengthScale of the underlying RBF kernel. Default √n, matching
	// NonlinearConfig.
	LengthScale float64
}

// NewSparse constructs a sparse encoder for n features and dimension d.
func NewSparse(n, d int, seed uint64, cfg SparseConfig) (*Sparse, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("encoding: non-positive encoder size %dx%d", n, d)
	}
	s := cfg.Sparsity
	if s == 0 {
		s = 0.8
	}
	if s < 0 || s >= 1 {
		return nil, fmt.Errorf("encoding: sparsity %g outside [0, 1)", s)
	}
	ls := cfg.LengthScale
	if ls == 0 {
		ls = math.Sqrt(float64(n))
	}
	w := int(math.Round((1 - s) * float64(n)))
	// Floor the window so small feature vectors keep enough cross-
	// feature mixing per dimension: a 75-feature node at 80% sparsity
	// would otherwise see only 15 features per row, losing the
	// interactions the non-linear encoder exists to capture.
	if w < minWindow {
		w = minWindow
	}
	if w > n {
		w = n
	}
	r := rng.New(seed)
	e := &Sparse{
		n:           n,
		d:           d,
		window:      w,
		sparsity:    s,
		lengthScale: ls,
		starts:      make([]int, d),
		weights:     make([][]float64, d),
		biases:      make([]float64, d),
	}
	// Scale up the surviving weights so that the dot-product variance
	// matches the dense encoder's: Var(B·F) is proportional to the
	// number of non-zero weights, so multiply by sqrt(n/w).
	scale := math.Sqrt(float64(n)/float64(w)) / ls
	for i := 0; i < d; i++ {
		e.starts[i] = r.Intn(n)
		row := make([]float64, w)
		for j := range row {
			row[j] = r.Norm() * scale
		}
		e.weights[i] = row
		e.biases[i] = r.Uniform(0, 2*math.Pi)
	}
	return e, nil
}

// Dim implements Encoder.
func (e *Sparse) Dim() int { return e.d }

// NumFeatures implements Encoder.
func (e *Sparse) NumFeatures() int { return e.n }

// Window returns the number of non-zero weights per row.
func (e *Sparse) Window() int { return e.window }

// Sparsity returns the configured sparsity factor s.
func (e *Sparse) Sparsity() float64 { return e.sparsity }

// EncodeFloat returns the pre-binarization encoding. The window wraps
// around the end of the feature vector, so every row reads exactly
// `window` consecutive (mod n) features, matching the sequential BRAM
// fetch of the hardware pipeline.
//
//hdlint:hotpath
func (e *Sparse) EncodeFloat(features []float64) []float64 {
	checkFeatures(len(features), e.n)
	out := make([]float64, e.d)
	for i := 0; i < e.d; i++ {
		var dot float64
		start := e.starts[i]
		row := e.weights[i]
		for j, wgt := range row {
			idx := start + j
			if idx >= e.n {
				idx -= e.n
			}
			dot += wgt * features[idx]
		}
		out[i] = math.Cos(dot+e.biases[i]) * math.Sin(dot)
	}
	return out
}

// Encode implements Encoder.
func (e *Sparse) Encode(features []float64) hdc.Bipolar {
	return hdc.FromSigns(e.EncodeFloat(features))
}

// MACsPerEncode returns the multiply-accumulates per encoding:
// d windows of `window` weights — the (1−s)× saving over dense.
func (e *Sparse) MACsPerEncode() int64 {
	return int64(e.d) * int64(e.window)
}
