// Package encoding implements the hyperdimensional encoders of the paper:
// the universal non-linear RBF-kernel encoder of §III-A (the paper's
// accuracy contribution over prior linear HD classifiers), its sparse
// variant matching the FPGA BRAM layout of §V-A, the raw random-Fourier-
// feature map of eq. (2) used to validate the kernel approximation, the
// baseline linear ID-level encoder of [36] that Fig 7 compares against,
// and the 2D fractional-power image encoder.
package encoding

import (
	"fmt"

	"edgehd/internal/hdc"
)

// Encoder maps an original-space feature vector to a bipolar hypervector.
// Encoders are deterministic after construction: the random bases are
// drawn once from the construction seed and then fixed, exactly as the
// paper prescribes ("once they are randomly generated, we keep them fixed
// during the later learning and inference").
type Encoder interface {
	// Encode maps a feature vector of length NumFeatures to a bipolar
	// hypervector of dimension Dim.
	Encode(features []float64) hdc.Bipolar
	// Dim returns the hypervector dimensionality D.
	Dim() int
	// NumFeatures returns the expected input feature count n.
	NumFeatures() int
}

// checkFeatures panics when the input length does not match the encoder;
// encoders are wired to fixed-width sensors, so a mismatch is a
// programming error, not a runtime condition.
func checkFeatures(got, want int) {
	if got != want {
		//hdlint:allow panic-policy sanctioned hot-path guard (Encode cannot return an error)
		panic(fmt.Sprintf("encoding: got %d features, encoder expects %d", got, want))
	}
}
