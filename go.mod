module edgehd

go 1.22
